//! Minimal `--key value` / `--flag` argument parsing (no external deps,
//! per the workspace dependency policy).

use std::collections::HashMap;

/// Parsed flags: `--key value` pairs plus bare `--switch`es.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse an argv slice. `known_switches` take no value; everything
    /// else starting with `--` expects one.
    pub fn parse(argv: &[String], known_switches: &[&str]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if known_switches.contains(&key) {
                out.switches.push(key.to_string());
                i += 1;
            } else {
                let Some(value) = argv.get(i + 1) else {
                    return Err(format!("--{key} expects a value"));
                };
                if out.values.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("--{key} given twice"));
                }
                i += 2;
            }
        }
        Ok(out)
    }

    /// A required string value.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// An optional string value.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Was a bare switch given?
    pub fn has_switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = Args::parse(
            &v(&["--seed", "7", "--no-auto-lfs", "--out", "x.csv"]),
            &["no-auto-lfs"],
        )
        .unwrap();
        assert_eq!(a.required("seed").unwrap(), "7");
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert!(a.has_switch("no-auto-lfs"));
        assert_eq!(a.optional("out"), Some("x.csv"));
        assert_eq!(a.optional("missing"), None);
        assert_eq!(a.get_or("entities", 200usize).unwrap(), 200);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(&v(&["positional"]), &[]).is_err());
        assert!(Args::parse(&v(&["--seed"]), &[]).is_err());
        assert!(Args::parse(&v(&["--seed", "1", "--seed", "2"]), &[]).is_err());
        let a = Args::parse(&v(&["--seed", "x"]), &[]).unwrap();
        assert!(a.get_or("seed", 0u64).is_err());
        assert!(a.required("other").is_err());
    }
}
