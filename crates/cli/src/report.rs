//! `panda report` — render a run journal (JSONL from `panda match
//! --journal`) as a human-readable debugging report: the span tree with
//! duration-histogram sparklines, EM convergence per warm start, the
//! transitivity projection summary, auto-LF grid decisions, and the
//! paper's "where does each LF disagree with the model" panel.

use serde::Value;
use std::collections::BTreeMap;

/// One parsed journal event (the subset of fields the report uses).
struct Event {
    kind: String,
    span: u64,
    parent: u64,
    fields: Value,
}

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    v.get_field(key)
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn f_str<'a>(e: &'a Event, key: &str) -> &'a str {
    field(&e.fields, key).and_then(as_str).unwrap_or("?")
}

fn f_f64(e: &Event, key: &str) -> f64 {
    field(&e.fields, key).and_then(as_f64).unwrap_or(f64::NAN)
}

fn f_u64(e: &Event, key: &str) -> u64 {
    field(&e.fields, key).and_then(as_u64).unwrap_or(0)
}

fn parse_journal(text: &str, path: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = serde_json::parse_value(line)
            .map_err(|e| format!("{path}:{}: bad journal line: {e:?}", lineno + 1))?;
        let kind = field(&v, "kind")
            .and_then(as_str)
            .ok_or_else(|| format!("{path}:{}: event without a kind", lineno + 1))?
            .to_string();
        events.push(Event {
            kind,
            span: field(&v, "span").and_then(as_u64).unwrap_or(0),
            parent: field(&v, "parent").and_then(as_u64).unwrap_or(0),
            fields: field(&v, "fields").cloned().unwrap_or(Value::Null),
        });
    }
    Ok(events)
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// Render the span tree: each `span` event is a node, linked by
/// span/parent ids. Events from worker threads parent to the root.
fn render_span_tree(out: &mut String, events: &[Event]) {
    let spans: Vec<&Event> = events.iter().filter(|e| e.kind == "span").collect();
    if spans.is_empty() {
        return;
    }
    out.push_str("span tree:\n");
    // Children in id order = creation order.
    let mut children: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for s in &spans {
        children.entry(s.parent).or_default().push(s);
    }
    for v in children.values_mut() {
        v.sort_by_key(|s| s.span);
    }
    fn walk(out: &mut String, children: &BTreeMap<u64, Vec<&Event>>, id: u64, depth: usize) {
        if let Some(kids) = children.get(&id) {
            for kid in kids {
                out.push_str(&format!(
                    "  {:indent$}{} ({})\n",
                    "",
                    f_str(kid, "name"),
                    fmt_ms(f_u64(kid, "dur_ns")),
                    indent = depth * 2
                ));
                walk(out, children, kid.span, depth + 1);
            }
        }
    }
    walk(out, &children, 0, 0);

    // Per-name aggregate with the log2 duration histogram as a sparkline
    // (same bucketing the metrics snapshot uses).
    out.push_str("\nspan histograms:\n");
    let mut agg: BTreeMap<&str, (u64, u64, [u64; panda_obs::HIST_BUCKETS])> = BTreeMap::new();
    for s in &spans {
        let ns = f_u64(s, "dur_ns");
        let bucket = (127 - u128::from(ns.max(1)).leading_zeros()) as usize;
        let entry = agg.entry(f_str(s, "name")).or_default();
        entry.0 += 1;
        entry.1 += ns;
        entry.2[bucket.min(panda_obs::HIST_BUCKETS - 1)] += 1;
    }
    let wide = agg.keys().map(|k| k.len()).max().unwrap_or(0);
    for (name, (count, total, hist)) in &agg {
        out.push_str(&format!(
            "  {name:<wide$}  n={count:<6} total={:>10}  {}\n",
            fmt_ms(*total),
            panda_obs::sparkline(hist),
        ));
    }
}

/// EM convergence per (model, warm start): iterations, log-likelihood
/// trajectory endpoints, final posterior shift.
fn render_em(out: &mut String, events: &[Event]) {
    let iters: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == "model.em.iter")
        .collect();
    if iters.is_empty() {
        return;
    }
    let mut runs: BTreeMap<(String, String), Vec<&Event>> = BTreeMap::new();
    for e in &iters {
        runs.entry((f_str(e, "model").to_string(), f_str(e, "init").to_string()))
            .or_default()
            .push(e);
    }
    out.push_str("\nEM convergence (per warm start):\n");
    out.push_str(&format!(
        "  {:<10} {:<12} {:>6} {:>14} {:>14} {:>11} {:>8}\n",
        "model", "init", "iters", "ll(first)", "ll(last)", "delta", "pi"
    ));
    for ((model, init), run) in &runs {
        let last = run.last().expect("non-empty run");
        out.push_str(&format!(
            "  {:<10} {:<12} {:>6} {:>14.3} {:>14.3} {:>11.2e} {:>8.4}\n",
            model,
            init,
            run.len(),
            f_f64(run[0], "ll"),
            f_f64(last, "ll"),
            f_f64(last, "delta"),
            f_f64(last, "pi"),
        ));
    }
}

fn render_transitivity(out: &mut String, events: &[Event]) {
    let sweeps = events
        .iter()
        .filter(|e| e.kind == "model.transitivity.sweep")
        .count();
    let Some(proj) = events
        .iter()
        .rfind(|e| e.kind == "model.transitivity.projection")
    else {
        return;
    };
    out.push_str(&format!(
        "\ntransitivity projection: {} triangles, {} boosted, {} sweeps ({} recorded), \
         violation mass {:.4} -> {:.4}\n",
        f_u64(proj, "triangles"),
        f_u64(proj, "boosted"),
        f_u64(proj, "sweeps"),
        sweeps,
        f_f64(proj, "violation_mass_pre"),
        f_f64(proj, "violation_mass_post"),
    ));
}

fn render_autolf(out: &mut String, events: &[Event]) {
    let cells: Vec<&Event> = events.iter().filter(|e| e.kind == "autolf.cell").collect();
    let emits: Vec<&Event> = events.iter().filter(|e| e.kind == "autolf.emit").collect();
    if cells.is_empty() && emits.is_empty() {
        return;
    }
    let kept = cells
        .iter()
        .filter(|e| f_str(e, "decision") == "keep")
        .count();
    out.push_str(&format!(
        "\nauto-LF grid: {} cells scored, {} kept, {} pruned, {} emitted\n",
        cells.len(),
        kept,
        cells.len() - kept,
        emits.len()
    ));
    for e in &emits {
        out.push_str(&format!(
            "  {:<12} {} ~ {}  config={}  theta={:.2}  est.precision={:.3}  support={}\n",
            f_str(e, "name"),
            f_str(e, "attr"),
            f_str(e, "right_attr"),
            f_str(e, "config"),
            f_f64(e, "threshold"),
            f_f64(e, "est_precision"),
            f_u64(e, "est_support"),
        ));
    }
}

/// The paper's debugging panel, in text: per LF, where it disagrees with
/// the labeling model, worst offenders first.
fn render_disagreements(out: &mut String, events: &[Event], top: usize) {
    // The journal holds one lf.stats batch per refit; the last batch
    // describes the final model.
    let stats: Vec<&Event> = events.iter().filter(|e| e.kind == "lf.stats").collect();
    if stats.is_empty() {
        return;
    }
    let mut latest: BTreeMap<&str, &Event> = BTreeMap::new();
    for e in &stats {
        latest.insert(f_str(e, "lf"), e);
    }
    let mut rows: Vec<&Event> = latest.into_values().collect();
    rows.sort_by_key(|e| {
        std::cmp::Reverse(f_u64(e, "model_disagree_fp") + f_u64(e, "model_disagree_fn"))
    });
    out.push_str(&format!(
        "\ntop disagreements per LF (final refit, top {top}):\n"
    ));
    out.push_str(&format!(
        "  {:<16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}\n",
        "lf", "+1", "-1", "abstain", "model.FP", "model.FN", "conflicts"
    ));
    for e in rows.iter().take(top) {
        out.push_str(&format!(
            "  {:<16} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}\n",
            f_str(e, "lf"),
            f_u64(e, "n_match"),
            f_u64(e, "n_nonmatch"),
            f_u64(e, "n_abstain"),
            f_u64(e, "model_disagree_fp"),
            f_u64(e, "model_disagree_fn"),
            f_u64(e, "conflict_pairs"),
        ));
    }
}

/// Render a full report from parsed journal text.
pub fn render(text: &str, path: &str, top: usize) -> Result<String, String> {
    let events = parse_journal(text, path)?;
    if events.is_empty() {
        return Err(format!("{path}: empty journal (no events)"));
    }
    let mut out = String::new();
    let dropped: u64 = events
        .iter()
        .filter(|e| e.kind == "journal.dropped")
        .map(|e| f_u64(e, "dropped"))
        .sum();
    out.push_str(&format!("journal: {} events", events.len()));
    if dropped > 0 {
        out.push_str(&format!(" (+{dropped} dropped at the capacity bound)"));
    }
    out.push('\n');
    render_span_tree(&mut out, &events);
    render_em(&mut out, &events);
    render_transitivity(&mut out, &events);
    render_autolf(&mut out, &events);
    render_disagreements(&mut out, &events, top);
    Ok(out)
}

/// Serialize a parsed [`Value`] back to compact JSON (the vendored
/// `serde_json::to_string` needs `Serialize`, which `Value` itself does
/// not implement).
fn json_of(v: &Value) -> String {
    fn escape_into(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    fn write(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write(item, out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    write(val, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    write(v, &mut out);
    out
}

/// Split `--follow`'s URL into a connect address and a request path.
/// Accepts `http://host:port[/path]` or bare `host:port[/path]`; the
/// path defaults to `/events`.
fn parse_follow_url(url: &str) -> Result<(String, String), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/events"),
    };
    if host.is_empty() || !host.contains(':') {
        return Err(format!("--follow expects host:port[/path], got {url:?}"));
    }
    let path = if path == "/" { "/events" } else { path };
    Ok((host.to_string(), path.to_string()))
}

/// One blocking `GET` over a fresh connection; returns the body of a
/// 200 response. `Connection: close` keeps the framing trivial: read
/// to EOF, split at the blank line.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("writing to {addr}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("reading from {addr}: {e}"))?;
    let raw = String::from_utf8_lossy(&raw);
    let Some((head, body)) = raw.split_once("\r\n\r\n") else {
        return Err(format!("{addr}{path}: malformed HTTP response"));
    };
    let status = head.split_whitespace().nth(1).unwrap_or("?");
    if status != "200" {
        return Err(format!("{addr}{path}: HTTP {status}: {body}"));
    }
    Ok(body.to_string())
}

/// `panda report --follow`: tail a live server's journal ring over
/// `GET /events?since=N` long-polls, printing each event as a JSON
/// line and resuming from the returned cursor.
fn follow(url: &str, mut since: u64, max_polls: usize, timeout_ms: u64) -> Result<(), String> {
    let (addr, base_path) = parse_follow_url(url)?;
    let mut polls = 0usize;
    loop {
        let sep = if base_path.contains('?') { '&' } else { '?' };
        let path = format!("{base_path}{sep}since={since}&timeout_ms={timeout_ms}");
        let body = http_get(&addr, &path)?;
        let v = serde_json::parse_value(&body)
            .map_err(|e| format!("{addr}{path}: bad /events body: {e}"))?;
        let next = field(&v, "next")
            .and_then(as_u64)
            .ok_or_else(|| format!("{addr}{path}: response has no \"next\" cursor"))?;
        let missed = field(&v, "missed").and_then(as_u64).unwrap_or(0);
        if missed > 0 {
            eprintln!("# {missed} event(s) dropped by the ring before seq {next}");
        }
        if let Some(Value::Array(events)) = field(&v, "events") {
            for e in events {
                println!("{}", json_of(e));
            }
        }
        since = next;
        polls += 1;
        if max_polls > 0 && polls >= max_polls {
            return Ok(());
        }
    }
}

/// `panda report`
pub fn run_report(argv: &[String]) -> Result<(), String> {
    let args = crate::args::Args::parse(argv, &[])?;
    if let Some(url) = args.optional("follow") {
        let since: u64 = args.get_or("since", 0)?;
        let max_polls: usize = args.get_or("max-polls", 0)?;
        let timeout_ms: u64 = args.get_or("poll-timeout-ms", 10_000)?;
        return follow(url, since, max_polls, timeout_ms);
    }
    let path = args.required("journal")?;
    let top: usize = args.get_or("top", 10)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    print!("{}", render(&text, path, top)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature hand-written journal covering every section.
    const JOURNAL: &str = concat!(
        r#"{"seq":0,"ts_us":1,"kind":"session.loaded","span":0,"parent":0,"fields":{"left_rows":4,"right_rows":4,"candidates":6}}"#,
        "\n",
        r#"{"seq":1,"ts_us":5,"kind":"model.em.iter","span":0,"parent":2,"fields":{"model":"panda","init":"smoothed","iter":1,"ll":-120.5,"alpha_m":0.8,"alpha_u":0.9,"delta":0.25,"pi":0.1}}"#,
        "\n",
        r#"{"seq":2,"ts_us":6,"kind":"model.em.iter","span":0,"parent":2,"fields":{"model":"panda","init":"smoothed","iter":2,"ll":-100.25,"alpha_m":0.85,"alpha_u":0.92,"delta":0.001,"pi":0.12}}"#,
        "\n",
        r#"{"seq":3,"ts_us":7,"kind":"model.transitivity.sweep","span":0,"parent":2,"fields":{"sweep":1,"max_viol":0.5,"adjusted":3}}"#,
        "\n",
        r#"{"seq":4,"ts_us":8,"kind":"model.transitivity.projection","span":0,"parent":2,"fields":{"triangles":1,"boosted":2,"sweeps":1,"violation_mass_pre":0.8,"violation_mass_post":0.01}}"#,
        "\n",
        r#"{"seq":5,"ts_us":9,"kind":"autolf.cell","span":0,"parent":0,"fields":{"decision":"keep","attr":"name","right_attr":"name","config":"lower+ws|space|uniform|jaccard","threshold":0.6,"est_precision":0.9,"est_support":12}}"#,
        "\n",
        r#"{"seq":6,"ts_us":10,"kind":"autolf.cell","span":0,"parent":0,"fields":{"decision":"prune","attr":"addr","right_attr":"addr","config":"lower+ws|space|uniform|jaccard","est_precision":0.4,"est_support":2}}"#,
        "\n",
        r#"{"seq":7,"ts_us":11,"kind":"autolf.emit","span":0,"parent":2,"fields":{"name":"auto_lf_0","attr":"name","right_attr":"name","config":"lower+ws|space|uniform|jaccard","threshold":0.6,"est_precision":0.9,"est_support":12}}"#,
        "\n",
        r#"{"seq":8,"ts_us":12,"kind":"lf.stats","span":0,"parent":2,"fields":{"lf":"auto_lf_0","n_match":12,"n_nonmatch":3,"n_abstain":5,"coverage":0.75,"overlap":0.1,"conflict":0.05,"model_disagree_fp":2,"model_disagree_fn":1,"conflict_pairs":4}}"#,
        "\n",
        r#"{"seq":9,"ts_us":13,"kind":"span","span":3,"parent":2,"fields":{"name":"session.refit","dur_ns":1500000}}"#,
        "\n",
        r#"{"seq":10,"ts_us":14,"kind":"span","span":2,"parent":0,"fields":{"name":"session.load","dur_ns":9000000}}"#,
        "\n",
    );

    #[test]
    fn renders_every_section() {
        let report = render(JOURNAL, "test.jsonl", 10).unwrap();
        assert!(report.contains("journal: 11 events"), "{report}");
        // Span tree: refit nested under load.
        assert!(report.contains("session.load (9.000ms)"));
        assert!(report.contains("    session.refit (1.500ms)"));
        assert!(report.contains("span histograms:"));
        // EM table.
        assert!(report.contains("EM convergence"));
        assert!(report.contains("panda"));
        assert!(report.contains("smoothed"));
        assert!(report.contains("-120.5"));
        assert!(report.contains("-100.25"));
        // Transitivity.
        assert!(report.contains("transitivity projection: 1 triangles, 2 boosted"));
        // Auto-LF.
        assert!(report.contains("auto-LF grid: 2 cells scored, 1 kept, 1 pruned, 1 emitted"));
        assert!(report.contains("auto_lf_0"));
        // Disagreements.
        assert!(report.contains("top disagreements per LF"));
        let table_line = report
            .lines()
            .find(|l| l.trim_start().starts_with("auto_lf_0") && l.contains("12"))
            .expect("disagreement row");
        assert!(table_line.contains('2') && table_line.contains('1'));
    }

    #[test]
    fn rejects_garbage_and_empty_journals() {
        assert!(render("", "empty.jsonl", 10).is_err());
        assert!(render("not json\n", "bad.jsonl", 10)
            .unwrap_err()
            .contains("bad.jsonl:1"));
        assert!(render("{\"no_kind\":1}\n", "x.jsonl", 10)
            .unwrap_err()
            .contains("without a kind"));
    }

    #[test]
    fn follow_url_parsing() {
        assert_eq!(
            parse_follow_url("http://127.0.0.1:7700").unwrap(),
            ("127.0.0.1:7700".to_string(), "/events".to_string())
        );
        assert_eq!(
            parse_follow_url("127.0.0.1:7700/").unwrap(),
            ("127.0.0.1:7700".to_string(), "/events".to_string())
        );
        assert_eq!(
            parse_follow_url("http://localhost:80/custom?x=1").unwrap(),
            ("localhost:80".to_string(), "/custom?x=1".to_string())
        );
        assert!(parse_follow_url("http:///events").is_err());
        assert!(parse_follow_url("no-port").is_err());
    }

    #[test]
    fn json_round_trips_through_local_renderer() {
        let line = r#"{"seq":3,"kind":"serve.slow","fields":{"rid":"0-17","dur_us":1500,"ok":true,"note":"a\"b\\c","arr":[1,-2,3.5],"none":null}}"#;
        let v = serde_json::parse_value(line).unwrap();
        assert_eq!(json_of(&v), line);
    }

    #[test]
    fn disagreement_table_keeps_last_refit_and_sorts_worst_first() {
        let journal = concat!(
            r#"{"seq":0,"ts_us":1,"kind":"lf.stats","span":0,"parent":0,"fields":{"lf":"a","n_match":1,"n_nonmatch":1,"n_abstain":1,"model_disagree_fp":9,"model_disagree_fn":9,"conflict_pairs":0}}"#,
            "\n",
            r#"{"seq":1,"ts_us":2,"kind":"lf.stats","span":0,"parent":0,"fields":{"lf":"a","n_match":1,"n_nonmatch":1,"n_abstain":1,"model_disagree_fp":1,"model_disagree_fn":0,"conflict_pairs":0}}"#,
            "\n",
            r#"{"seq":2,"ts_us":3,"kind":"lf.stats","span":0,"parent":0,"fields":{"lf":"b","n_match":1,"n_nonmatch":1,"n_abstain":1,"model_disagree_fp":3,"model_disagree_fn":2,"conflict_pairs":0}}"#,
            "\n",
        );
        let report = render(journal, "t.jsonl", 10).unwrap();
        let a_pos = report.find("\n  a ").expect("row a");
        let b_pos = report.find("\n  b ").expect("row b");
        // b (5 disagreements in the final batch) outranks a (1: the early
        // 18-disagreement batch was superseded by the later refit).
        assert!(b_pos < a_pos, "{report}");
    }
}
