//! The CLI subcommands.

use crate::args::Args;
use panda_datasets::{generate as gen_task, loader, DatasetFamily, GeneratorConfig};
use panda_session::{ModelChoice, PandaSession, SessionConfig};
use panda_table::{MatchSet, Table, TablePair};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "\
panda — weakly supervised entity matching

USAGE:
  panda generate --family <name> [--entities N] [--seed N] [--noise light|heavy] --out <dir>
  panda match --left <csv> --right <csv> [--gold <csv>]
              [--model panda|panda-transitive|snorkel|majority]
              [--threshold T] [--seed N] [--no-auto-lfs] [--out <csv>]
              [--metrics <json>] [--journal <jsonl>]
  panda report --journal <jsonl> [--top N]
  panda report --follow <url> [--since N] [--max-polls N]
              [--poll-timeout-ms N]
  panda serve --addr <host:port> [--workers N] [--state-dir <dir>]
              [--max-sessions N] [--session-ttl <secs>]
              [--reuseport on|off] [--keep-alive-timeout <secs>]
              [--max-requests-per-conn N] [--max-conns N]
              [--slow-request-ms N]
              [--repl-addr <host:port>] [--follow <host:port>]
              [--peers <addr,addr,...>] [--advertise <host:port>]
              [--metrics <json>] [--journal <jsonl>]
  panda promcheck [--file <text>] [--require <name,name,...>]
  panda families
  panda help

`generate` writes <family>_left.csv / _right.csv / _gold.csv into --out.
`match` runs blocking → auto-LF discovery → labeling model over two CSV
tables (first line = header) and writes predicted match row pairs.
`report` renders a recorded journal as a debugging report: span tree,
EM convergence per warm start, auto-LF grid decisions, and per-LF
model-disagreement counts. With --follow it instead tails a live
server's journal over GET /events long-polls, printing each event as a
JSON line (--since resumes from a sequence number; --max-polls bounds
the number of polls, 0 = follow forever).
`promcheck` validates a Prometheus text exposition (from --file or
stdin) against the 0.0.4 format rules — TYPE lines, family membership,
duplicate series, histogram bucket monotonicity — and exits non-zero
on any violation; --require asserts named families are present.
`serve` runs the IDE loop as a JSON HTTP API (sessions, incremental LF
edits, refits, spot labels, debug queries, ad-hoc matching); drains
gracefully on SIGTERM or POST /shutdown, then writes --metrics /
--journal. With --state-dir every acknowledged edit is WAL-logged and
fsynced before the response, sessions are snapshot-compacted, and a
restart recovers them bit-identically (SIGKILL loses at most the
in-flight request). --max-sessions bounds resident sessions via LRU
eviction to snapshot; --session-ttl evicts sessions idle that long
(both require --state-dir; evicted sessions rehydrate on next touch).
Serving is event-driven: each worker owns an SO_REUSEPORT listener and
an epoll loop with HTTP/1.1 keep-alive + pipelining. --reuseport off
falls back to one shared listener; --keep-alive-timeout bounds idle
persistent connections; --max-requests-per-conn forces Connection:
close after N requests (0 = unbounded); --max-conns caps open
connections per worker shard (beyond it new connections get 503).
Replication: --repl-addr (requires --state-dir) streams every
acknowledged WAL record to followers started with --follow <addr>;
followers serve reads, answer mutations 421 with the primary's
address, and POST /promote flips one to primary. --peers builds a
consistent-hash shard ring over the listed HTTP addresses (must
include this server's --advertise, default its bound address);
misrouted sessions answer 421 naming the owner, and POST /rebalance
moves a session between shards by snapshot + WAL-tail handoff.

OBSERVABILITY:
  --metrics <json>   write a pipeline telemetry snapshot (per-stage span
                     timings, histograms, counters, gauges) as JSON
  --journal <jsonl>  record structured provenance events (EM iterations,
                     transitivity sweeps, auto-LF decisions, LF stats)
                     as JSON lines for `panda report`
  PANDA_LOG=summary  print a per-stage timing summary to stderr
  PANDA_LOG=spans    also print every counter and gauge

Under `serve` the plane is live while the server runs: GET /metrics
serves the snapshot as JSON, GET /metrics?format=prometheus as
Prometheus 0.0.4 text (labelled RED series per route/status/shard);
every response carries a correlation X-Request-Id echoed on journal
events; GET /events?since=N long-polls the journal ring for new
events; --slow-request-ms N journals a serve.slow event for any
request slower than N milliseconds (0 = off).";

fn parse_family(name: &str) -> Result<DatasetFamily, String> {
    match name {
        "abt-buy" => Ok(DatasetFamily::AbtBuy),
        "amazon-google" => Ok(DatasetFamily::AmazonGoogle),
        "walmart-amazon" => Ok(DatasetFamily::WalmartAmazon),
        "abt-buy-dirty" => Ok(DatasetFamily::AbtBuyDirty),
        "dblp-acm" => Ok(DatasetFamily::DblpAcm),
        "dblp-scholar" => Ok(DatasetFamily::DblpScholar),
        "fodors-zagats" => Ok(DatasetFamily::FodorsZagats),
        "cora-dedup" => Ok(DatasetFamily::CoraDedup),
        other => Err(format!(
            "unknown family {other:?} (run `panda families` for the list)"
        )),
    }
}

/// `panda families`
pub fn families() -> Result<(), String> {
    println!("available benchmark families:");
    for f in DatasetFamily::extended_suite() {
        println!("  {}", f.name());
    }
    println!(
        "  {}  (single-table deduplication)",
        DatasetFamily::CoraDedup.name()
    );
    Ok(())
}

/// `panda generate`
pub fn generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let family = parse_family(args.required("family")?)?;
    let entities: usize = args.get_or("entities", 200)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let out = args.required("out")?;
    let mut cfg = GeneratorConfig::new(seed).with_entities(entities);
    match args.optional("noise") {
        None | Some("light") => {}
        Some("heavy") => cfg = cfg.with_noise(panda_datasets::PerturbConfig::heavy()),
        Some(other) => return Err(format!("--noise must be light|heavy, got {other:?}")),
    }
    let task = gen_task(family, &cfg);
    loader::save_task(Path::new(out), family.name(), &task)
        .map_err(|e| format!("writing dataset: {e}"))?;
    println!(
        "wrote {}_left.csv ({} rows), {}_right.csv ({} rows), {}_gold.csv ({} matches) to {}",
        family.name(),
        task.left.len(),
        family.name(),
        task.right.len(),
        family.name(),
        task.gold.as_ref().map(MatchSet::len).unwrap_or(0),
        out
    );
    Ok(())
}

fn read_table(path: &str, name: &str) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Table::from_csv_str(name, &text, true).map_err(|e| format!("parsing {path}: {e}"))
}

fn read_gold(path: &str) -> Result<MatchSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut set = MatchSet::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.trim().is_empty() {
            continue;
        }
        let mut it = line.split(',');
        let parse = |s: Option<&str>| -> Result<u32, String> {
            s.and_then(|x| x.trim().parse().ok())
                .ok_or_else(|| format!("{path}:{}: bad gold line {line:?}", i + 1))
        };
        let l = parse(it.next())?;
        let r = parse(it.next())?;
        set.insert(panda_table::RecordId(l), panda_table::RecordId(r));
    }
    Ok(set)
}

/// Fail fast on an output path we won't be able to write at the end of
/// the run: create (or truncate-later) the file now, so a typo'd
/// directory is a clean CLI error before minutes of pipeline work — and
/// never a panic.
fn ensure_writable(path: &str, what: &str) -> Result<(), String> {
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map(drop)
        .map_err(|e| format!("cannot write {what} file {path}: {e}"))
}

/// `panda match`
pub fn run_match(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["no-auto-lfs"])?;
    // Validate output paths BEFORE the pipeline runs (and before the
    // input tables are even read): these fail at the very end otherwise.
    let metrics_path = args.optional("metrics");
    let journal_path = args.optional("journal");
    if let Some(path) = metrics_path {
        ensure_writable(path, "metrics")?;
    }
    if let Some(path) = journal_path {
        ensure_writable(path, "journal")?;
    }
    let left = read_table(args.required("left")?, "left")?;
    let right = read_table(args.required("right")?, "right")?;
    let gold = match args.optional("gold") {
        Some(path) => Some(read_gold(path)?),
        None => None,
    };
    let threshold: f64 = args.get_or("threshold", 0.5)?;
    let model = match args.optional("model").unwrap_or("panda") {
        "panda" => ModelChoice::Panda,
        "panda-transitive" => ModelChoice::PandaTransitive(panda_model::TransitivityMode::TwoTable),
        "snorkel" => ModelChoice::Snorkel,
        "majority" => ModelChoice::Majority,
        other => {
            return Err(format!(
                "--model must be panda|panda-transitive|snorkel|majority, got {other:?}"
            ))
        }
    };
    // Telemetry must be live *before* the session runs blocking / auto-LF
    // discovery / the labeling model — that's where all the spans are.
    let log_mode = panda_obs::log_mode();
    if metrics_path.is_some() || log_mode != panda_obs::LogMode::Off {
        panda_obs::set_enabled(true);
    }
    if journal_path.is_some() {
        panda_obs::set_journal_enabled(true);
    }
    let tables = TablePair { left, right, gold };
    let config = SessionConfig {
        seed: args.get_or("seed", 0)?,
        auto_lfs: !args.has_switch("no-auto-lfs"),
        model,
        ..SessionConfig::default()
    };
    let session = PandaSession::load(tables, config);
    if session.candidates().is_empty() {
        // A silent empty report reads as "no matches"; zero candidates
        // actually means blocking never produced anything to score.
        return Err(
            "blocking produced zero candidate pairs; check that the input tables share \
             vocabulary, or loosen blocking with smaller tables"
                .to_string(),
        );
    }

    // EM Stats Panel.
    let em = session.em_stats();
    println!("left rows        {}", em.left_rows);
    println!("right rows       {}", em.right_rows);
    println!("candidate pairs  {}", em.candidate_pairs);
    println!("auto LFs         {}", em.n_lfs);
    println!("matches found    {}", em.matches_found);

    // LF Stats Panel.
    if em.n_lfs > 0 {
        println!("\nLF stats:");
        println!(
            "  {:<14} {:>7} {:>7} {:>8} {:>9} {:>9}",
            "name", "+1", "-1", "abstain", "est.FPR", "est.FNR"
        );
        for row in session.lf_stats() {
            println!(
                "  {:<14} {:>7} {:>7} {:>8} {:>9.4} {:>9.4}",
                row.name,
                row.n_match,
                row.n_nonmatch,
                row.n_abstain,
                row.est_fpr.unwrap_or(f64::NAN),
                row.est_fnr.unwrap_or(f64::NAN)
            );
        }
    }

    // Quality against gold, if provided.
    if let Some(m) = session.current_metrics() {
        println!(
            "\nvs gold: precision {:.3}  recall {:.3}  F1 {:.3}",
            m.precision, m.recall, m.f1
        );
    }

    // Predicted matches.
    let mut out = String::from("left_row,right_row,probability\n");
    let mut n = 0usize;
    for (i, pair) in session.candidates().iter() {
        let gamma = session.posteriors()[i];
        if gamma >= threshold {
            out.push_str(&format!("{},{},{gamma:.4}\n", pair.left.0, pair.right.0));
            n += 1;
        }
    }
    match args.optional("out") {
        Some(path) => {
            std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
            println!("\nwrote {n} predicted matches (γ ≥ {threshold}) to {path}");
        }
        None => {
            println!("\n{n} predicted matches (γ ≥ {threshold}); pass --out <csv> to save them");
        }
    }

    // End-of-run telemetry: JSON snapshot for machines, stderr report for
    // humans (PANDA_LOG=summary|spans).
    if panda_obs::enabled() {
        let snap = panda_obs::snapshot();
        if let Some(path) = metrics_path {
            std::fs::write(path, snap.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote metrics snapshot to {path}");
        }
        if log_mode != panda_obs::LogMode::Off {
            eprint!("{}", snap.render(log_mode));
        }
    }
    if let Some(path) = journal_path {
        let dump = panda_obs::journal_drain();
        let n = dump.events.len();
        std::fs::write(path, dump.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {n} journal events to {path}");
    }
    Ok(())
}

/// `panda serve`
pub fn serve(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let addr = args.optional("addr").unwrap_or("127.0.0.1:7700");
    let metrics_path = args.optional("metrics");
    let journal_path = args.optional("journal");
    if let Some(path) = metrics_path {
        ensure_writable(path, "metrics")?;
    }
    if let Some(path) = journal_path {
        ensure_writable(path, "journal")?;
    }
    // Telemetry on before the first request: /metrics should never be
    // empty. The journal ring backs GET /events long-polls and
    // request-id correlation, so it is always live under serve; the
    // ring is bounded (drop-oldest), and --journal additionally dumps
    // whatever it holds to a file at shutdown.
    panda_obs::set_enabled(true);
    panda_obs::set_journal_enabled(true);
    let state_dir = args.optional("state-dir").map(std::path::PathBuf::from);
    let max_sessions: usize = args.get_or("max-sessions", 0)?;
    let session_ttl_secs: u64 = args.get_or("session-ttl", 0)?;
    if state_dir.is_none() && (max_sessions > 0 || session_ttl_secs > 0) {
        // Without a store, eviction would *drop* sessions instead of
        // parking them on disk — refuse rather than silently lose work.
        return Err("--max-sessions/--session-ttl require --state-dir".into());
    }
    let reuseport = match args.optional("reuseport").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--reuseport takes on|off, got {other:?}")),
    };
    // Replication & sharding topology. Conflicts are rejected here with
    // the offending flag named, before anything binds.
    let repl_addr = args.optional("repl-addr").map(str::to_string);
    let follow = args.optional("follow").map(str::to_string);
    let advertise = args.optional("advertise").map(str::to_string);
    let peers: Vec<String> = args
        .optional("peers")
        .map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    if follow.is_some() && state_dir.is_some() {
        return Err(
            "--follow conflicts with --state-dir: a follower replicates the primary's \
             WAL in memory instead of writing its own"
                .into(),
        );
    }
    if follow.is_some() && repl_addr.is_some() {
        return Err(
            "--follow conflicts with --repl-addr: a follower subscribes to a primary, \
             it does not ship a WAL of its own"
                .into(),
        );
    }
    if repl_addr.is_some() && state_dir.is_none() {
        return Err(
            "--repl-addr requires --state-dir: only fsynced WAL records are shipped \
             to followers"
                .into(),
        );
    }
    if args.optional("peers").is_some() && peers.is_empty() {
        return Err("--peers must list at least one address (comma-separated)".into());
    }
    let defaults = panda_serve::ServerConfig::default();
    let keep_alive_secs: u64 =
        args.get_or("keep-alive-timeout", defaults.keep_alive_timeout.as_secs())?;
    panda_serve::signal::install_handlers();
    let handle = panda_serve::Server::start(panda_serve::ServerConfig {
        addr: addr.to_string(),
        workers: args.get_or("workers", 0)?,
        reuseport,
        keep_alive_timeout: std::time::Duration::from_secs(keep_alive_secs),
        max_requests_per_conn: args
            .get_or("max-requests-per-conn", defaults.max_requests_per_conn)?,
        max_conns: args.get_or("max-conns", defaults.max_conns)?,
        slow_request_ms: args.get_or("slow-request-ms", defaults.slow_request_ms)?,
        state_dir: state_dir.clone(),
        max_sessions,
        session_ttl: (session_ttl_secs > 0)
            .then(|| std::time::Duration::from_secs(session_ttl_secs)),
        repl_addr: repl_addr.clone(),
        follow: follow.clone(),
        peers,
        advertise,
        ..Default::default()
    })
    .map_err(|e| format!("cannot start server on {addr}: {e}"))?;
    println!("panda serve listening on http://{}", handle.addr());
    if let Some(repl) = handle.repl_addr() {
        println!("replication listener on {repl} (followers: panda serve --follow {repl})");
    }
    if let Some(primary) = &follow {
        println!("following primary at {primary} (read-only; POST /promote to take over)");
    }
    if let Some(dir) = &state_dir {
        println!(
            "durable state in {} ({} session(s) recovered)",
            dir.display(),
            handle.state().len()
        );
    }
    println!("stop with POST /shutdown or SIGTERM (drains in-flight requests)");
    handle.join();
    println!("drained; shut down cleanly");

    if let Some(path) = metrics_path {
        let snap = panda_obs::snapshot();
        std::fs::write(path, snap.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = journal_path {
        let dump = panda_obs::journal_drain();
        let n = dump.events.len();
        std::fs::write(path, dump.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {n} journal events to {path}");
    }
    Ok(())
}

/// `panda promcheck` — validate a Prometheus text exposition with the
/// same in-tree parser the test suite uses, so CI can pipe a live
/// `GET /metrics?format=prometheus` scrape through it.
pub fn promcheck(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let text = match args.optional("file") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
    };
    let families =
        panda_obs::prom::parse(&text).map_err(|e| format!("invalid Prometheus exposition: {e}"))?;
    if let Some(required) = args.optional("require") {
        for name in required.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            if !families.iter().any(|f| f.name == name) {
                return Err(format!(
                    "required metric family {name:?} missing from exposition"
                ));
            }
        }
    }
    let samples: usize = families.iter().map(|f| f.samples.len()).sum();
    println!("ok: {} metric families, {samples} samples", families.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_parsing() {
        assert!(parse_family("abt-buy").is_ok());
        assert!(parse_family("cora-dedup").is_ok());
        assert!(parse_family("nope").is_err());
    }

    #[test]
    fn generate_then_match_round_trip() {
        let dir = std::env::temp_dir().join("panda-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_string_lossy().to_string();
        generate(&[
            "--family".into(),
            "fodors-zagats".into(),
            "--entities".into(),
            "60".into(),
            "--seed".into(),
            "5".into(),
            "--out".into(),
            dirs.clone(),
        ])
        .unwrap();
        let out_csv = dir.join("matches.csv").to_string_lossy().to_string();
        run_match(&[
            "--left".into(),
            format!("{dirs}/fodors-zagats_left.csv"),
            "--right".into(),
            format!("{dirs}/fodors-zagats_right.csv"),
            "--gold".into(),
            format!("{dirs}/fodors-zagats_gold.csv"),
            "--out".into(),
            out_csv.clone(),
        ])
        .unwrap();
        let written = std::fs::read_to_string(&out_csv).unwrap();
        assert!(written.starts_with("left_row,right_row,probability\n"));
        assert!(
            written.lines().count() > 10,
            "found a useful number of matches"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn match_rejects_unwritable_metrics_and_journal_paths() {
        // The bad output path must error BEFORE input parsing: the input
        // CSVs here don't exist, so an early clean error proves the path
        // check came first (and no panic either way).
        for flag in ["metrics", "journal"] {
            let err = run_match(&[
                "--left".into(),
                "/nonexistent-in.csv".into(),
                "--right".into(),
                "/nonexistent-in.csv".into(),
                format!("--{flag}"),
                "/nonexistent-dir/deep/out.file".into(),
            ])
            .unwrap_err();
            assert!(
                err.contains(&format!("cannot write {flag} file")),
                "clean early error for --{flag}: {err}"
            );
        }
    }

    #[test]
    fn journal_round_trip_through_report() {
        let dir = std::env::temp_dir().join("panda-cli-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_string_lossy().to_string();
        generate(&[
            "--family".into(),
            "fodors-zagats".into(),
            "--entities".into(),
            "60".into(),
            "--seed".into(),
            "5".into(),
            "--out".into(),
            dirs.clone(),
        ])
        .unwrap();
        let journal = dir.join("run.jsonl").to_string_lossy().to_string();
        run_match(&[
            "--left".into(),
            format!("{dirs}/fodors-zagats_left.csv"),
            "--right".into(),
            format!("{dirs}/fodors-zagats_right.csv"),
            "--model".into(),
            "panda-transitive".into(),
            "--journal".into(),
            journal.clone(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&journal).unwrap();
        // The provenance classes the tentpole promises.
        for kind in [
            "\"model.em.iter\"",
            "\"model.transitivity.projection\"",
            "\"autolf.cell\"",
            "\"autolf.emit\"",
            "\"lf.stats\"",
            "\"session.loaded\"",
            "\"span\"",
        ] {
            assert!(text.contains(kind), "journal has {kind} events");
        }
        // And the report renders from it end-to-end.
        let report = crate::report::render(&text, &journal, 10).unwrap();
        assert!(report.contains("EM convergence"));
        assert!(report.contains("transitivity projection:"));
        assert!(report.contains("auto-LF grid:"));
        assert!(report.contains("top disagreements per LF"));
        assert!(report.contains("span tree:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn match_rejects_zero_candidates_cleanly() {
        let dir = std::env::temp_dir().join("panda-cli-zero-cand-test");
        std::fs::create_dir_all(&dir).unwrap();
        let left = dir.join("left.csv");
        let right = dir.join("right.csv");
        // Disjoint vocabularies: blocking finds nothing.
        std::fs::write(&left, "id,name\n1,aaaa bbbb cccc\n2,dddd eeee ffff\n").unwrap();
        std::fs::write(&right, "id,name\n1,gggg hhhh iiii\n2,jjjj kkkk llll\n").unwrap();
        let err = run_match(&[
            "--left".into(),
            left.to_string_lossy().to_string(),
            "--right".into(),
            right.to_string_lossy().to_string(),
            "--no-auto-lfs".into(),
        ])
        .unwrap_err();
        assert!(err.contains("zero candidate pairs"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn match_rejects_bad_model() {
        let err = run_match(&[
            "--left".into(),
            "/nonexistent.csv".into(),
            "--right".into(),
            "/nonexistent.csv".into(),
            "--model".into(),
            "gpt".into(),
        ])
        .unwrap_err();
        assert!(err.contains("reading") || err.contains("--model"));
    }
}
