//! Aligned plain-text tables for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table (the format the experiment binaries print
/// and EXPERIMENTS.md embeds).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of `&str`.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                out.push_str(cell);
                if i + 1 < cols {
                    for _ in 0..pad + 2 {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (for `target/experiments/<id>.csv`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimals (the convention across experiment
/// output).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["dataset", "f1"]);
        t.row_str(&["abt-buy", "0.812"]);
        t.row_str(&["dblp-scholar-long-name", "0.7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All data lines start their second column at the same offset.
        let off = lines[2].find("0.812").unwrap();
        assert_eq!(lines[3].find("0.7").unwrap(), off);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_str(&["x,y", "q\"q"]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",\"q\"\"q\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        TextTable::new(&["a", "b"]).row_str(&["only one"]);
    }
}
