//! Precision / recall / F1 and PR curves.

use serde::{Deserialize, Serialize};

/// Confusion counts for binary match/non-match decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Predicted match, truly match.
    pub tp: usize,
    /// Predicted match, truly non-match.
    pub fp: usize,
    /// Predicted non-match, truly match.
    pub fn_: usize,
    /// Predicted non-match, truly non-match.
    pub tn: usize,
}

/// Precision / recall / F1 / accuracy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// `tp / (tp + fp)` (1.0 when no positives predicted — vacuous).
    pub precision: f64,
    /// `tp / (tp + fn)` (1.0 when no true positives exist — vacuous).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when tp = 0).
    pub f1: f64,
    /// `(tp + tn) / total`.
    pub accuracy: f64,
}

/// Count the confusion matrix of predictions vs gold.
pub fn confusion(predictions: &[bool], gold: &[bool]) -> ConfusionCounts {
    assert_eq!(predictions.len(), gold.len(), "length mismatch");
    let mut c = ConfusionCounts::default();
    for (&p, &g) in predictions.iter().zip(gold) {
        match (p, g) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

impl ConfusionCounts {
    /// Derive [`Metrics`] from the counts.
    pub fn metrics(&self) -> Metrics {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        let precision = if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        };
        let recall = if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        };
        let f1 = if self.tp == 0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        let accuracy = if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        };
        Metrics {
            precision,
            recall,
            f1,
            accuracy,
        }
    }
}

/// Shorthand: metrics of thresholded posteriors (≥ 0.5).
pub fn metrics_at_half(posteriors: &[f64], gold: &[bool]) -> Metrics {
    let preds: Vec<bool> = posteriors.iter().map(|&g| g >= 0.5).collect();
    confusion(&preds, gold).metrics()
}

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Decision threshold.
    pub threshold: f64,
    /// Precision at this threshold.
    pub precision: f64,
    /// Recall at this threshold.
    pub recall: f64,
    /// F1 at this threshold.
    pub f1: f64,
}

/// Precision-recall curve over the given thresholds.
pub fn pr_curve(posteriors: &[f64], gold: &[bool], thresholds: &[f64]) -> Vec<PrPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let preds: Vec<bool> = posteriors.iter().map(|&g| g >= t).collect();
            let m = confusion(&preds, gold).metrics();
            PrPoint {
                threshold: t,
                precision: m.precision,
                recall: m.recall,
                f1: m.f1,
            }
        })
        .collect()
}

/// The threshold (among candidates) maximising F1 — useful for oracle
/// upper bounds in ablations.
pub fn best_f1_threshold(posteriors: &[f64], gold: &[bool]) -> (f64, Metrics) {
    let thresholds: Vec<f64> = (1..100).map(|i| i as f64 / 100.0).collect();
    pr_curve(posteriors, gold, &thresholds)
        .into_iter()
        .max_by(|a, b| a.f1.total_cmp(&b.f1))
        .map(|p| {
            let preds: Vec<bool> = posteriors.iter().map(|&g| g >= p.threshold).collect();
            (p.threshold, confusion(&preds, gold).metrics())
        })
        .expect("non-empty threshold grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_confusion() {
        let preds = [true, true, false, false, true];
        let gold = [true, false, true, false, true];
        let c = confusion(&preds, &gold);
        assert_eq!(
            c,
            ConfusionCounts {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        let m = c.metrics();
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        // No predicted positives.
        let m = confusion(&[false, false], &[true, false]).metrics();
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        // No true positives in gold.
        let m = confusion(&[false, false], &[false, false]).metrics();
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 0.0); // tp = 0 → F1 defined as 0
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn pr_curve_monotone_recall() {
        let post = [0.9, 0.8, 0.4, 0.2, 0.05];
        let gold = [true, true, true, false, false];
        let pts = pr_curve(&post, &gold, &[0.1, 0.3, 0.5, 0.85]);
        // Recall is non-increasing in the threshold.
        for w in pts.windows(2) {
            assert!(w[0].recall >= w[1].recall);
        }
    }

    #[test]
    fn best_threshold_beats_half_when_calibration_is_off() {
        // Posteriors systematically low: everything < 0.5 but ranked
        // perfectly.
        let post = [0.45, 0.4, 0.1, 0.05];
        let gold = [true, true, false, false];
        assert_eq!(metrics_at_half(&post, &gold).f1, 0.0);
        let (t, m) = best_f1_threshold(&post, &gold);
        assert!(t < 0.5);
        assert_eq!(m.f1, 1.0);
    }

    proptest! {
        /// Metrics stay in [0,1] and accuracy matches a direct count.
        #[test]
        fn metric_bounds(
            data in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..50)
        ) {
            let preds: Vec<bool> = data.iter().map(|d| d.0).collect();
            let gold: Vec<bool> = data.iter().map(|d| d.1).collect();
            let m = confusion(&preds, &gold).metrics();
            for v in [m.precision, m.recall, m.f1, m.accuracy] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            let direct = data.iter().filter(|(p, g)| p == g).count() as f64
                / data.len() as f64;
            prop_assert!((m.accuracy - direct).abs() < 1e-12);
        }
    }
}
