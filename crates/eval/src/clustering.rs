//! Entity clustering: from predicted match pairs to entity groups.
//!
//! Pairwise match decisions are rarely the final product — a catalog wants
//! *entities*, i.e. the connected components (or better) of the match
//! graph. This module provides:
//!
//! * [`UnionFind`] — path-halving + union-by-size disjoint sets,
//! * [`clusters_from_pairs`] — connected-component clustering of predicted
//!   matches over the two-table node space,
//! * [`dense_clusters_from_pairs`] — a stricter variant that peels off
//!   weakly-connected nodes (single edge into a big component), the usual
//!   cheap guard against hub records chaining clusters together,
//! * [`pairwise_cluster_metrics`] — precision/recall/F1 of the pairs
//!   *implied* by a clustering against gold pairs (the standard cluster
//!   evaluation for ER).

use crate::metrics::Metrics;
use panda_table::{CandidatePair, MatchSet, RecordId};
use std::collections::HashMap;

/// Disjoint-set forest with union by size and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand; // path halving
            x = grand;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false when already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// A node of the match graph: a record in the left or right table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// Row of the left table.
    Left(RecordId),
    /// Row of the right table.
    Right(RecordId),
}

/// One entity cluster: the records (from both tables) resolved together.
pub type Cluster = Vec<Node>;

fn encode(node: Node, n_left: u32) -> u32 {
    match node {
        Node::Left(id) => id.0,
        Node::Right(id) => n_left + id.0,
    }
}

fn decode(idx: u32, n_left: u32) -> Node {
    if idx < n_left {
        Node::Left(RecordId(idx))
    } else {
        Node::Right(RecordId(idx - n_left))
    }
}

/// Connected components of the predicted match pairs. Returns clusters
/// with ≥ 2 records, largest first (singletons are unmatched records and
/// are omitted).
pub fn clusters_from_pairs(pairs: &MatchSet, n_left: usize, n_right: usize) -> Vec<Cluster> {
    let n_left = n_left as u32;
    let mut uf = UnionFind::new((n_left as usize) + n_right);
    for p in pairs.iter() {
        uf.union(
            encode(Node::Left(p.left), n_left),
            encode(Node::Right(p.right), n_left),
        );
    }
    let mut by_root: HashMap<u32, Cluster> = HashMap::new();
    for idx in 0..uf.parent.len() as u32 {
        let root = uf.find(idx);
        by_root.entry(root).or_default().push(decode(idx, n_left));
    }
    let mut clusters: Vec<Cluster> = by_root.into_values().filter(|c| c.len() >= 2).collect();
    for c in &mut clusters {
        c.sort();
    }
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    clusters
}

/// Connected components, then peel nodes attached to their component by a
/// single edge when the component is larger than `max_chain` — the classic
/// guard against one spurious pair chaining two real entities.
pub fn dense_clusters_from_pairs(
    pairs: &MatchSet,
    n_left: usize,
    n_right: usize,
    max_chain: usize,
) -> Vec<Cluster> {
    let n_left_u = n_left as u32;
    // Degree per node.
    let mut degree: HashMap<u32, u32> = HashMap::new();
    for p in pairs.iter() {
        *degree
            .entry(encode(Node::Left(p.left), n_left_u))
            .or_insert(0) += 1;
        *degree
            .entry(encode(Node::Right(p.right), n_left_u))
            .or_insert(0) += 1;
    }
    let clusters = clusters_from_pairs(pairs, n_left, n_right);
    clusters
        .into_iter()
        .map(|c| {
            if c.len() <= max_chain {
                return c;
            }
            let kept: Cluster = c
                .iter()
                .copied()
                .filter(|&node| degree.get(&encode(node, n_left_u)).copied().unwrap_or(0) >= 2)
                .collect();
            if kept.len() >= 2 {
                kept
            } else {
                c
            }
        })
        .filter(|c| c.len() >= 2)
        .collect()
}

/// Precision/recall/F1 of the left-right pairs implied by a clustering
/// against the gold match set. Within a cluster, every (left, right)
/// combination counts as a predicted match.
pub fn pairwise_cluster_metrics(clusters: &[Cluster], gold: &MatchSet) -> Metrics {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut implied = MatchSet::new();
    for c in clusters {
        let lefts: Vec<RecordId> = c
            .iter()
            .filter_map(|n| match n {
                Node::Left(id) => Some(*id),
                Node::Right(_) => None,
            })
            .collect();
        let rights: Vec<RecordId> = c
            .iter()
            .filter_map(|n| match n {
                Node::Right(id) => Some(*id),
                Node::Left(_) => None,
            })
            .collect();
        for &l in &lefts {
            for &r in &rights {
                if implied.insert(l, r) {
                    if gold.contains(&CandidatePair { left: l, right: r }) {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            }
        }
    }
    let fn_ = gold.len().saturating_sub(tp);
    crate::metrics::ConfusionCounts { tp, fp, fn_, tn: 0 }.metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(ps: &[(u32, u32)]) -> MatchSet {
        let mut m = MatchSet::new();
        for &(l, r) in ps {
            m.insert(RecordId(l), RecordId(r));
        }
        m
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn components_from_pairs() {
        // L0-R0, L1-R0 (shared right), L2-R2.
        let clusters = clusters_from_pairs(&pairs(&[(0, 0), (1, 0), (2, 2)]), 4, 4);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 3, "largest first");
        assert!(clusters[0].contains(&Node::Left(RecordId(0))));
        assert!(clusters[0].contains(&Node::Left(RecordId(1))));
        assert!(clusters[0].contains(&Node::Right(RecordId(0))));
        assert_eq!(clusters[1].len(), 2);
    }

    #[test]
    fn singletons_are_omitted() {
        let clusters = clusters_from_pairs(&pairs(&[(0, 0)]), 10, 10);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn dense_variant_peels_chain_nodes() {
        // A 4-node chain: L0-R0, L1-R0, L1-R1 … plus a hub edge L2-R1
        // chaining in a third record with degree 1.
        let p = pairs(&[(0, 0), (1, 0), (1, 1), (2, 1)]);
        let loose = clusters_from_pairs(&p, 4, 4);
        assert_eq!(loose[0].len(), 5);
        let dense = dense_clusters_from_pairs(&p, 4, 4, 3);
        // L0 (deg 1), L2 (deg 1) peeled; R0, L1, R1 (deg ≥ 2) remain.
        assert_eq!(dense[0].len(), 3, "{dense:?}");
    }

    #[test]
    fn cluster_metrics_count_implied_pairs() {
        // Cluster {L0, L1, R0}: implies (0,0) and (1,0). Gold has (0,0)
        // only → precision 1/2; gold also has (2,2) unmatched → recall 1/2.
        let clusters = vec![vec![
            Node::Left(RecordId(0)),
            Node::Left(RecordId(1)),
            Node::Right(RecordId(0)),
        ]];
        let gold = pairs(&[(0, 0), (2, 2)]);
        let m = pairwise_cluster_metrics(&clusters, &gold);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let clusters = clusters_from_pairs(&MatchSet::new(), 3, 3);
        assert!(clusters.is_empty());
        let m = pairwise_cluster_metrics(&[], &MatchSet::new());
        assert_eq!(m.recall, 1.0); // vacuous
    }
}
