//! Dataset × model sweeps.

use crate::metrics::{confusion, Metrics};
use panda_lf::LabelMatrix;
use panda_model::LabelModel;
use panda_table::{CandidateSet, TablePair};
use serde::{Deserialize, Serialize};

/// The result of one model on one task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRun {
    /// Model name.
    pub model: String,
    /// Dataset / task name.
    pub dataset: String,
    /// Quality at threshold 0.5.
    pub metrics: Metrics,
    /// Wall time of `fit_predict` in milliseconds.
    pub fit_ms: f64,
}

/// The gold label vector aligned with a candidate set (panics without
/// gold — harness runs are benchmark-only).
pub fn gold_vector(tables: &TablePair, candidates: &CandidateSet) -> Vec<bool> {
    let gold = tables.gold.as_ref().expect("harness requires ground truth");
    candidates
        .pairs()
        .iter()
        .map(|p| gold.contains(p))
        .collect()
}

/// Fit one model and evaluate its thresholded posteriors against gold.
pub fn evaluate_posteriors(
    model: &mut dyn LabelModel,
    dataset: &str,
    matrix: &LabelMatrix,
    candidates: &CandidateSet,
    gold: &[bool],
) -> ModelRun {
    let start = std::time::Instant::now();
    let posteriors = model.fit_predict(matrix, Some(candidates));
    let fit_ms = start.elapsed().as_secs_f64() * 1e3;
    let preds: Vec<bool> = posteriors.iter().map(|&g| g >= 0.5).collect();
    ModelRun {
        model: model.name().to_string(),
        dataset: dataset.to_string(),
        metrics: confusion(&preds, gold).metrics(),
        fit_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_model::MajorityVote;
    use panda_table::{CandidatePair, MatchSet, RecordId, Schema, Table};

    #[test]
    fn gold_vector_alignment() {
        let schema = Schema::of_text(&["k"]);
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        l.push(vec!["a"]).unwrap();
        r.push(vec!["a"]).unwrap();
        r.push(vec!["b"]).unwrap();
        let mut gold = MatchSet::new();
        gold.insert(RecordId(0), RecordId(0));
        let tp = TablePair::with_gold(l, r, gold);
        let cands = CandidateSet::from_pairs([CandidatePair::new(0, 1), CandidatePair::new(0, 0)]);
        assert_eq!(gold_vector(&tp, &cands), vec![false, true]);
    }

    #[test]
    fn evaluate_produces_sane_run() {
        let schema = Schema::of_text(&["k"]);
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        l.push(vec!["a"]).unwrap();
        r.push(vec!["a"]).unwrap();
        let mut gold = MatchSet::new();
        gold.insert(RecordId(0), RecordId(0));
        let tp = TablePair::with_gold(l, r, gold);
        let cands = CandidateSet::from_pairs([CandidatePair::new(0, 0)]);
        let matrix = LabelMatrix::new();
        // No LFs → majority falls back to its prior (< 0.5) → recall 0.
        let mut mv = MajorityVote::default();
        let gold_v = gold_vector(&tp, &cands);
        // Empty matrix has 0 pairs; build a real one.
        let mut reg = panda_lf::LfRegistry::new();
        reg.upsert(std::sync::Arc::new(panda_lf::ClosureLf::new("yes", |_| {
            panda_lf::Label::Match
        })));
        let mut matrix2 = matrix;
        matrix2.apply(&reg, &tp, &cands);
        let run = evaluate_posteriors(&mut mv, "tiny", &matrix2, &cands, &gold_v);
        assert_eq!(run.model, "majority-vote");
        assert_eq!(run.metrics.f1, 1.0);
        assert!(run.fit_ms >= 0.0);
    }
}
