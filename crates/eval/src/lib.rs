//! Evaluation metrics and the experiment harness.
//!
//! [`metrics`] provides the standard EM quality numbers
//! (precision/recall/F1, confusion counts, PR curves); [`harness`] runs
//! `dataset × model` sweeps and [`report`] renders aligned text tables —
//! the same row format the experiment binaries print and EXPERIMENTS.md
//! records.

pub mod clustering;
pub mod harness;
pub mod metrics;
pub mod report;

pub use clustering::{
    clusters_from_pairs, dense_clusters_from_pairs, pairwise_cluster_metrics, UnionFind,
};
pub use harness::{evaluate_posteriors, gold_vector, ModelRun};
pub use metrics::{confusion, pr_curve, ConfusionCounts, Metrics, PrPoint};
pub use report::TextTable;
