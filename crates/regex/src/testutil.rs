//! A tiny reference matcher used by property tests.
//!
//! This is a *set-of-positions* NFA interpretation of the AST: for a node
//! and a start position it computes every reachable end position. It is
//! exponential-ish and allocation-happy — only suitable as an oracle for
//! small inputs — but it is simple enough to be "obviously correct", which
//! is exactly what a differential property test against the Pike VM needs.
//! Only boolean `is_match` semantics are compared (thread-priority details
//! like greediness don't affect *whether* a match exists).

use crate::ast::Ast;
use crate::classes::is_word_char;

/// Does `pattern` (already parsed) match anywhere in `text`?
pub fn backtrack_is_match(ast: &Ast, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    (0..=chars.len()).any(|start| !ends(ast, &chars, start).is_empty())
}

/// All end positions reachable by matching `ast` starting at `start`.
fn ends(ast: &Ast, chars: &[char], start: usize) -> Vec<usize> {
    let n = chars.len();
    match ast {
        Ast::Empty => vec![start],
        Ast::Literal(c) => {
            if start < n && chars[start] == *c {
                vec![start + 1]
            } else {
                vec![]
            }
        }
        Ast::AnyChar => {
            if start < n && chars[start] != '\n' {
                vec![start + 1]
            } else {
                vec![]
            }
        }
        Ast::Class(cls) => {
            if start < n && cls.contains(chars[start]) {
                vec![start + 1]
            } else {
                vec![]
            }
        }
        Ast::Concat(items) => {
            let mut positions = vec![start];
            for item in items {
                let mut next = Vec::new();
                for p in positions {
                    next.extend(ends(item, chars, p));
                }
                next.sort_unstable();
                next.dedup();
                positions = next;
                if positions.is_empty() {
                    break;
                }
            }
            positions
        }
        Ast::Alternate(branches) => {
            let mut out = Vec::new();
            for b in branches {
                out.extend(ends(b, chars, start));
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        Ast::Group { node, .. } => ends(node, chars, start),
        Ast::Repeat { node, min, max, .. } => {
            // One application of the body to a set of positions. A body
            // that matches the empty string at position p yields p itself
            // from `ends`, so "staying" is covered without a special case.
            let step = |current: &[usize]| -> Vec<usize> {
                let mut next = Vec::new();
                for &p in current {
                    next.extend(ends(node, chars, p));
                }
                next.sort_unstable();
                next.dedup();
                next
            };
            // Exact positions after exactly `min` applications.
            let mut current = vec![start];
            for _ in 0..*min {
                current = step(&current);
                if current.is_empty() {
                    return vec![];
                }
            }
            let mut out = current.clone();
            match max {
                Some(m) => {
                    for _ in *min..*m {
                        current = step(&current);
                        out.extend(current.iter().copied());
                        out.sort_unstable();
                        out.dedup();
                        if current.is_empty() {
                            break;
                        }
                    }
                }
                None => {
                    // Transitive closure: keep stepping until no new
                    // positions appear (positions ⊆ 0..=n, so this
                    // terminates).
                    loop {
                        let next = step(&current);
                        let fresh: Vec<usize> =
                            next.iter().copied().filter(|p| !out.contains(p)).collect();
                        if fresh.is_empty() {
                            break;
                        }
                        out.extend(fresh.iter().copied());
                        out.sort_unstable();
                        current = fresh;
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        Ast::StartAnchor => {
            if start == 0 {
                vec![start]
            } else {
                vec![]
            }
        }
        Ast::EndAnchor => {
            if start == n {
                vec![start]
            } else {
                vec![]
            }
        }
        Ast::WordBoundary(positive) => {
            let before = (start > 0) && is_word_char(chars[start - 1]);
            let after = (start < n) && is_word_char(chars[start]);
            if (before != after) == *positive {
                vec![start]
            } else {
                vec![]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn bt(pat: &str, text: &str) -> bool {
        backtrack_is_match(&parse(pat).unwrap(), text)
    }

    #[test]
    fn oracle_basics() {
        assert!(bt("abc", "xabcy"));
        assert!(!bt("abc", "ab"));
        assert!(bt("a*b", "b"));
        assert!(bt("(ab)+", "abab"));
        assert!(!bt("(ab){3}", "abab"));
        assert!(bt("^a.c$", "abc"));
        assert!(bt(r"\bword\b", "a word here"));
    }

    #[test]
    fn oracle_handles_nullable_star() {
        assert!(bt("(a*)*", ""));
        assert!(bt("(a*)*b", "b"));
        assert!(!bt("(a*)*b", "c"));
    }

    #[test]
    fn oracle_min_reps_with_nullable_body() {
        // `(a?){3}` must match "" — body is nullable.
        assert!(bt("(a?){3}", ""));
        assert!(bt("(a?){3}", "aa"));
    }
}
