//! A small from-scratch regular-expression engine.
//!
//! Panda's labeling functions use regular expressions for attribute
//! extraction — the paper's `size_unmatch` LF pulls product sizes like
//! `40'` out of names and descriptions. This crate implements the subset
//! of Perl-style regex those LFs need, without the `regex` crate:
//!
//! * literals, `.`, character classes `[a-z0-9_]` / `[^…]`,
//!   escapes `\d \D \w \W \s \S` and punctuation escapes,
//! * quantifiers `* + ? {n} {n,} {n,m}` with non-greedy `?` variants,
//! * alternation `|`, capturing `(...)` and non-capturing `(?:...)` groups,
//! * anchors `^`, `$` and the word boundary `\b` / `\B`,
//! * a case-insensitive mode (`(?i)` prefix or [`Regex::new_ci`]).
//!
//! Matching uses a Pike VM over a Thompson NFA: linear time in
//! `pattern × text` with correct leftmost-greedy (Perl-like thread
//! priority) semantics and capture slots — no exponential backtracking, so
//! hostile user LF patterns cannot hang the IDE.
//!
//! Positions in [`Match`] and [`Captures`] are **byte offsets** into the
//! input `&str`, always on UTF-8 boundaries, so `&text[m.start..m.end]`
//! is safe.

pub mod ast;
pub mod classes;
pub mod nfa;
pub mod parser;
pub mod pikevm;
#[doc(hidden)]
pub mod testutil;

use std::fmt;

pub use ast::Ast;
pub use classes::CharClass;
pub use nfa::Program;

/// A compile error, with the byte position in the pattern where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset into the pattern.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for RegexError {}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    program: Program,
    pattern: String,
    n_groups: usize,
    case_insensitive: bool,
}

/// One successful match: byte offsets plus the matched text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'t> {
    /// Byte offset of the match start.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
    text: &'t str,
}

impl<'t> Match<'t> {
    /// The matched substring.
    pub fn as_str(&self) -> &'t str {
        &self.text[self.start..self.end]
    }

    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a zero-width match.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Capture groups of one match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    text: &'t str,
    /// `slots[2i], slots[2i+1]` are the byte start/end of group `i`.
    slots: Vec<Option<usize>>,
}

impl<'t> Captures<'t> {
    /// The `i`-th group as a [`Match`], if it participated in the match.
    pub fn get(&self, i: usize) -> Option<Match<'t>> {
        let start = (*self.slots.get(2 * i)?)?;
        let end = (*self.slots.get(2 * i + 1)?)?;
        Some(Match {
            start,
            end,
            text: self.text,
        })
    }

    /// The `i`-th group's text, if present.
    pub fn group_str(&self, i: usize) -> Option<&'t str> {
        self.get(i).map(|m| m.as_str())
    }

    /// Number of groups, counting group 0.
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// Always at least one group (the whole match).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Regex {
    /// Compile a pattern. A leading `(?i)` turns on case-insensitive mode.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let (ci, rest) = match pattern.strip_prefix("(?i)") {
            Some(rest) => (true, rest),
            None => (false, pattern),
        };
        Self::compile(rest, ci, pattern)
    }

    /// Compile a pattern in case-insensitive mode.
    pub fn new_ci(pattern: &str) -> Result<Regex, RegexError> {
        Self::compile(pattern, true, pattern)
    }

    fn compile(body: &str, ci: bool, original: &str) -> Result<Regex, RegexError> {
        let ast = parser::parse(body)?;
        let n_groups = ast.count_groups() + 1; // plus group 0
        let program = nfa::compile(&ast, n_groups, ci);
        Ok(Regex {
            program,
            pattern: original.to_string(),
            n_groups,
            case_insensitive: ci,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, counting group 0 (the whole match).
    pub fn group_count(&self) -> usize {
        self.n_groups
    }

    /// Whether the regex was compiled case-insensitively.
    pub fn is_case_insensitive(&self) -> bool {
        self.case_insensitive
    }

    /// Does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        pikevm::search(&self.program, text, 0).is_some()
    }

    /// Leftmost match, if any.
    pub fn find<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        let slots = pikevm::search(&self.program, text, 0)?;
        Some(Match {
            start: slots[0]?,
            end: slots[1]?,
            text,
        })
    }

    /// Leftmost match starting at or after byte offset `from`.
    pub fn find_at<'t>(&self, text: &'t str, from: usize) -> Option<Match<'t>> {
        let slots = pikevm::search(&self.program, text, from)?;
        Some(Match {
            start: slots[0]?,
            end: slots[1]?,
            text,
        })
    }

    /// Iterate over all non-overlapping matches, left to right.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter {
            re: self,
            text,
            at: 0,
            done: false,
        }
    }

    /// Capture groups of the leftmost match.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        let slots = pikevm::search(&self.program, text, 0)?;
        Some(Captures { text, slots })
    }

    /// All capture sets of all non-overlapping matches.
    pub fn captures_iter<'t>(&self, text: &'t str) -> Vec<Captures<'t>> {
        let mut out = Vec::new();
        let mut at = 0;
        while at <= text.len() {
            let Some(slots) = pikevm::search(&self.program, text, at) else {
                break;
            };
            let (s, e) = (slots[0].unwrap(), slots[1].unwrap());
            out.push(Captures { text, slots });
            at = if e > s {
                e
            } else {
                next_char_boundary(text, e)
            };
        }
        out
    }

    /// Replace every match with `replacement` (no `$n` expansion; see
    /// [`Regex::replace_all_groups`]).
    pub fn replace_all(&self, text: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut last = 0;
        for m in self.find_iter(text) {
            out.push_str(&text[last..m.start]);
            out.push_str(replacement);
            last = m.end;
        }
        out.push_str(&text[last..]);
        out
    }

    /// Replace every match, expanding `$0`–`$9` in `replacement` to the
    /// corresponding capture group's text (empty when the group did not
    /// participate). `$$` escapes a literal dollar sign.
    pub fn replace_all_groups(&self, text: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut last = 0;
        for caps in self.captures_iter(text) {
            let m = caps.get(0).expect("group 0 always present");
            out.push_str(&text[last..m.start]);
            let mut chars = replacement.chars().peekable();
            while let Some(c) = chars.next() {
                if c != '$' {
                    out.push(c);
                    continue;
                }
                match chars.peek().copied() {
                    Some('$') => {
                        chars.next();
                        out.push('$');
                    }
                    Some(d) if d.is_ascii_digit() => {
                        chars.next();
                        let idx = d.to_digit(10).unwrap() as usize;
                        if let Some(g) = caps.group_str(idx) {
                            out.push_str(g);
                        }
                    }
                    _ => out.push('$'),
                }
            }
            last = m.end;
        }
        out.push_str(&text[last..]);
        out
    }

    /// Split `text` on matches of the pattern.
    pub fn split<'t>(&self, text: &'t str) -> Vec<&'t str> {
        let mut out = Vec::new();
        let mut last = 0;
        for m in self.find_iter(text) {
            out.push(&text[last..m.start]);
            last = m.end;
        }
        out.push(&text[last..]);
        out
    }
}

/// Iterator over non-overlapping matches.
pub struct FindIter<'r, 't> {
    re: &'r Regex,
    text: &'t str,
    at: usize,
    done: bool,
}

impl<'r, 't> Iterator for FindIter<'r, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.done || self.at > self.text.len() {
            return None;
        }
        let m = self.re.find_at(self.text, self.at)?;
        // Advance past the match; for zero-width matches skip one char to
        // guarantee progress.
        self.at = if m.end > m.start {
            m.end
        } else {
            next_char_boundary(self.text, m.end)
        };
        if self.at > self.text.len() {
            self.done = true;
        }
        Some(m)
    }
}

pub(crate) fn next_char_boundary(text: &str, at: usize) -> usize {
    if at >= text.len() {
        return text.len() + 1; // signals exhaustion
    }
    let mut next = at + 1;
    while next < text.len() && !text.is_char_boundary(next) {
        next += 1;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("abc").unwrap();
        assert!(re.is_match("xxabcxx"));
        let m = re.find("xxabcxx").unwrap();
        assert_eq!((m.start, m.end, m.as_str()), (2, 5, "abc"));
        assert!(!re.is_match("ab"));
    }

    #[test]
    fn digit_class_and_plus() {
        let re = Regex::new(r"\d+").unwrap();
        let m = re.find("abc 123 def 45").unwrap();
        assert_eq!(m.as_str(), "123");
        let all: Vec<&str> = re.find_iter("abc 123 def 45").map(|m| m.as_str()).collect();
        assert_eq!(all, vec!["123", "45"]);
    }

    #[test]
    fn size_extraction_like_the_paper() {
        // The paper's size_unmatch LF extracts sizes like `40'` / `46"`.
        let re = Regex::new(r#"(\d+(?:\.\d+)?)\s*(?:'|"|-inch|inch|in\b)"#).unwrap();
        let caps = re.captures("sony bravia 40' lcd tv").unwrap();
        assert_eq!(caps.group_str(1), Some("40"));
        let caps = re.captures("samsung 46-inch hdtv").unwrap();
        assert_eq!(caps.group_str(1), Some("46"));
        assert!(re.captures("no size here").is_none());
    }

    #[test]
    fn alternation_is_leftmost_first() {
        let re = Regex::new("a|ab").unwrap();
        assert_eq!(re.find("ab").unwrap().as_str(), "a");
        let re = Regex::new("ab|a").unwrap();
        assert_eq!(re.find("ab").unwrap().as_str(), "ab");
    }

    #[test]
    fn greedy_vs_lazy() {
        let re = Regex::new("<.*>").unwrap();
        assert_eq!(re.find("<a><b>").unwrap().as_str(), "<a><b>");
        let re = Regex::new("<.*?>").unwrap();
        assert_eq!(re.find("<a><b>").unwrap().as_str(), "<a>");
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^abc$").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("xabc"));
        assert!(!re.is_match("abcx"));
    }

    #[test]
    fn word_boundary() {
        let re = Regex::new(r"\bcat\b").unwrap();
        assert!(re.is_match("the cat sat"));
        assert!(!re.is_match("concatenate"));
        let re = Regex::new(r"\Bcat\B").unwrap();
        assert!(re.is_match("concatenate"));
        assert!(!re.is_match("the cat sat"));
    }

    #[test]
    fn counted_repetition() {
        let re = Regex::new(r"a{2,3}").unwrap();
        assert!(!re.is_match("a"));
        assert_eq!(re.find("aaaa").unwrap().as_str(), "aaa");
        let re = Regex::new(r"\d{4}").unwrap();
        assert_eq!(re.find("year 2021!").unwrap().as_str(), "2021");
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new("(?i)sony").unwrap();
        assert!(re.is_match("SONY BRAVIA"));
        assert!(re.is_match("Sony"));
        let re = Regex::new_ci("[a-z]+").unwrap();
        assert_eq!(re.find("ABC").unwrap().as_str(), "ABC");
    }

    #[test]
    fn capture_groups() {
        let re = Regex::new(r"(\w+)@(\w+)\.com").unwrap();
        let caps = re.captures("mail bob@example.com now").unwrap();
        assert_eq!(caps.group_str(0), Some("bob@example.com"));
        assert_eq!(caps.group_str(1), Some("bob"));
        assert_eq!(caps.group_str(2), Some("example"));
        assert_eq!(caps.len(), 3);
    }

    #[test]
    fn optional_group_absent() {
        let re = Regex::new(r"a(b)?c").unwrap();
        let caps = re.captures("ac").unwrap();
        assert_eq!(caps.group_str(0), Some("ac"));
        assert_eq!(caps.get(1), None);
    }

    #[test]
    fn replace_and_split() {
        let re = Regex::new(r"\s+").unwrap();
        assert_eq!(re.replace_all("a  b\tc", " "), "a b c");
        assert_eq!(re.split("a  b\tc"), vec!["a", "b", "c"]);
    }

    #[test]
    fn replace_with_group_references() {
        // Normalise "40-inch" / "40 in" spellings to `40in`.
        let re = Regex::new(r"(\d+)[\s-]*(?:inch|in)\b").unwrap();
        assert_eq!(
            re.replace_all_groups("a 40-inch tv and a 52 in panel", "$1in"),
            "a 40in tv and a 52in panel"
        );
        // $$ escapes, unknown groups vanish, trailing $ is literal.
        let re = Regex::new(r"(\w+)@(\w+)").unwrap();
        assert_eq!(
            re.replace_all_groups("bob@example", "$2$$$1$9$"),
            "example$bob$"
        );
    }

    #[test]
    fn unicode_text() {
        let re = Regex::new("é+").unwrap();
        let m = re.find("café éé").unwrap();
        assert_eq!(m.as_str(), "é");
        let all: Vec<&str> = re.find_iter("café éé").map(|m| m.as_str()).collect();
        assert_eq!(all, vec!["é", "éé"]);
    }

    #[test]
    fn zero_width_iter_makes_progress() {
        let re = Regex::new("a*").unwrap();
        let n = re.find_iter("bbb").count();
        assert_eq!(n, 4); // empty match at each position incl. end
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("a{3,2}").is_err());
        assert!(Regex::new("*a").is_err());
    }
}
