//! Recursive-descent pattern parser.

use crate::ast::Ast;
use crate::classes::CharClass;
use crate::RegexError;

/// Parse a pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let mut p = Parser {
        chars: pattern.char_indices().collect(),
        pos: 0,
        next_group: 1,
    };
    let ast = p.alternation()?;
    if let Some((at, c)) = p.peek() {
        return Err(RegexError {
            pos: at,
            msg: format!("unexpected character {c:?} (unbalanced ')'?)"),
        });
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    next_group: u32,
}

impl Parser {
    fn peek(&self) -> Option<(usize, char)> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.peek(), Some((_, c)) if c == want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> RegexError {
        let pos = self.peek().map(|(at, _)| at).unwrap_or_else(|| {
            self.chars
                .last()
                .map(|&(at, c)| at + c.len_utf8())
                .unwrap_or(0)
        });
        RegexError {
            pos,
            msg: msg.into(),
        }
    }

    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some((_, c)) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().unwrap(),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some((_, '*')) => {
                self.bump();
                (0, None)
            }
            Some((_, '+')) => {
                self.bump();
                (1, None)
            }
            Some((_, '?')) => {
                self.bump();
                (0, Some(1))
            }
            Some((_, '{')) => match self.try_counted()? {
                Some(mm) => mm,
                None => return Ok(atom), // `{` treated as literal already consumed? no — see try_counted
            },
            _ => return Ok(atom),
        };
        if matches!(
            atom,
            Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary(_)
        ) {
            return Err(self.err("quantifier applied to an anchor"));
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Parse `{n}`, `{n,}` or `{n,m}` starting at `{`. Returns `None` (and
    /// rewinds) when the braces don't form a counted repetition, in which
    /// case `{` is handled as a literal by the caller's next atom — to keep
    /// things strict we instead *error*: counted-looking braces must be
    /// well formed.
    fn try_counted(&mut self) -> Result<Option<(u32, Option<u32>)>, RegexError> {
        let start = self.pos;
        self.bump(); // consume '{'
        let min = self.number();
        let Some(min) = min else {
            // Not a counted repetition ("a{b}" style) — treat '{' literally.
            self.pos = start;
            return Ok(None);
        };
        let max = if self.eat(',') {
            if matches!(self.peek(), Some((_, '}'))) {
                None
            } else {
                match self.number() {
                    Some(m) => Some(m),
                    None => return Err(self.err("expected number after ',' in {m,n}")),
                }
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(self.err("expected '}' to close counted repetition"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(RegexError {
                    pos: self.chars.get(start).map(|&(a, _)| a).unwrap_or(0),
                    msg: format!("invalid repetition range {{{min},{m}}}"),
                });
            }
        }
        // Counted repetitions compile by expansion; bound them so a
        // pathological `a{100000}` cannot blow up the program.
        const REPEAT_LIMIT: u32 = 512;
        if min > REPEAT_LIMIT || max.is_some_and(|m| m > REPEAT_LIMIT) {
            return Err(RegexError {
                pos: self.chars.get(start).map(|&(a, _)| a).unwrap_or(0),
                msg: format!("counted repetition exceeds limit of {REPEAT_LIMIT}"),
            });
        }
        Ok(Some((min, max)))
    }

    fn number(&mut self) -> Option<u32> {
        let mut n: Option<u32> = None;
        while let Some((_, c)) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                n = Some(n.unwrap_or(0).saturating_mul(10).saturating_add(d));
            } else {
                break;
            }
        }
        n
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        let Some((at, c)) = self.bump() else {
            return Ok(Ast::Empty);
        };
        match c {
            '.' => Ok(Ast::AnyChar),
            '^' => Ok(Ast::StartAnchor),
            '$' => Ok(Ast::EndAnchor),
            '(' => self.group(),
            '[' => self.class(),
            '\\' => self.escape(),
            '*' | '+' | '?' => Err(RegexError {
                pos: at,
                msg: format!("quantifier {c:?} with nothing to repeat"),
            }),
            '{' => {
                // A '{' not forming a counted repetition is a literal; but
                // when it directly follows nothing it is also a literal.
                Ok(Ast::Literal('{'))
            }
            _ => Ok(Ast::Literal(c)),
        }
    }

    fn group(&mut self) -> Result<Ast, RegexError> {
        let capturing = if matches!(self.peek(), Some((_, '?'))) {
            // Only (?:...) is supported among the (?...) forms.
            self.bump();
            if !self.eat(':') {
                return Err(self.err("unsupported group flag (only (?:...) is supported)"));
            }
            false
        } else {
            true
        };
        let index = capturing.then(|| {
            let i = self.next_group;
            self.next_group += 1;
            i
        });
        let inner = self.alternation()?;
        if !self.eat(')') {
            return Err(self.err("unclosed group"));
        }
        Ok(Ast::Group {
            index,
            node: Box::new(inner),
        })
    }

    fn class(&mut self) -> Result<Ast, RegexError> {
        let mut cls = CharClass::new();
        let negated = self.eat('^');
        let mut first = true;
        loop {
            let Some((_, c)) = self.bump() else {
                return Err(self.err("unclosed character class"));
            };
            match c {
                ']' if !first => break,
                '\\' => {
                    let Some((_, e)) = self.bump() else {
                        return Err(self.err("dangling escape in character class"));
                    };
                    match class_escape(e) {
                        ClassEscape::Class(sub) => cls.push_class(&sub),
                        ClassEscape::Char(lit) => {
                            // Possible range like \--\/ is unusual; treat as
                            // single char unless followed by '-'.
                            self.maybe_range(&mut cls, lit)?;
                        }
                    }
                }
                _ => {
                    let lit = if c == ']' && first { ']' } else { c };
                    self.maybe_range(&mut cls, lit)?;
                }
            }
            first = false;
        }
        if negated {
            cls.negate();
        }
        Ok(Ast::Class(cls))
    }

    /// After reading `lo` inside a class, check for a `lo-hi` range.
    fn maybe_range(&mut self, cls: &mut CharClass, lo: char) -> Result<(), RegexError> {
        if matches!(self.peek(), Some((_, '-')))
            && !matches!(self.chars.get(self.pos + 1), Some((_, ']')) | None)
        {
            self.bump(); // '-'
            let Some((_, hi)) = self.bump() else {
                return Err(self.err("unterminated range in character class"));
            };
            let hi = if hi == '\\' {
                match self.bump() {
                    Some((_, e)) => match class_escape(e) {
                        ClassEscape::Char(c) => c,
                        ClassEscape::Class(_) => {
                            return Err(self.err("class escape cannot end a range"))
                        }
                    },
                    None => return Err(self.err("dangling escape in character class")),
                }
            } else {
                hi
            };
            if hi < lo {
                return Err(self.err(format!("invalid class range {lo:?}-{hi:?}")));
            }
            cls.push_range(lo, hi);
        } else {
            cls.push_char(lo);
        }
        Ok(())
    }

    fn escape(&mut self) -> Result<Ast, RegexError> {
        let Some((at, c)) = self.bump() else {
            return Err(self.err("dangling escape at end of pattern"));
        };
        Ok(match c {
            'd' => Ast::Class(CharClass::digit()),
            'D' => {
                let mut cl = CharClass::digit();
                cl.negate();
                Ast::Class(cl)
            }
            'w' => Ast::Class(CharClass::word()),
            'W' => {
                let mut cl = CharClass::word();
                cl.negate();
                Ast::Class(cl)
            }
            's' => Ast::Class(CharClass::space()),
            'S' => {
                let mut cl = CharClass::space();
                cl.negate();
                Ast::Class(cl)
            }
            'b' => Ast::WordBoundary(true),
            'B' => Ast::WordBoundary(false),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '0' => Ast::Literal('\0'),
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError {
                    pos: at,
                    msg: format!("unsupported escape \\{c}"),
                })
            }
            c => Ast::Literal(c), // punctuation escapes: \. \( \\ \' \" …
        })
    }
}

enum ClassEscape {
    Class(CharClass),
    Char(char),
}

fn class_escape(e: char) -> ClassEscape {
    match e {
        'd' => ClassEscape::Class(CharClass::digit()),
        'w' => ClassEscape::Class(CharClass::word()),
        's' => ClassEscape::Class(CharClass::space()),
        'n' => ClassEscape::Char('\n'),
        't' => ClassEscape::Char('\t'),
        'r' => ClassEscape::Char('\r'),
        other => ClassEscape::Char(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_concat_and_alt() {
        let ast = parse("ab|c").unwrap();
        match ast {
            Ast::Alternate(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[1], Ast::Literal('c'));
            }
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn parses_quantifiers() {
        assert!(matches!(
            parse("a*").unwrap(),
            Ast::Repeat {
                min: 0,
                max: None,
                greedy: true,
                ..
            }
        ));
        assert!(matches!(
            parse("a+?").unwrap(),
            Ast::Repeat {
                min: 1,
                max: None,
                greedy: false,
                ..
            }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3,}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: None,
                ..
            }
        ));
    }

    #[test]
    fn literal_brace_when_not_counted() {
        // `a{b}` — `{` does not start a valid counted repetition.
        let ast = parse("a{b}").unwrap();
        match ast {
            Ast::Concat(items) => assert_eq!(items.len(), 4),
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn group_indices_assigned_in_order() {
        let ast = parse("(a)((b)(?:c))").unwrap();
        assert_eq!(ast.count_groups(), 3);
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let ast = parse(r"[a-f0-9\.\-]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.contains('b'));
                assert!(c.contains('7'));
                assert!(c.contains('.'));
                assert!(c.contains('-'));
                assert!(!c.contains('g'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn class_leading_bracket_and_trailing_dash() {
        let ast = parse(r"[]a-]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(c.contains(']'));
                assert!(c.contains('a'));
                assert!(c.contains('-'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        let err = parse("ab(cd").unwrap_err();
        assert_eq!(err.pos, 5);
        let err = parse("a{2,1}").unwrap_err();
        assert!(err.msg.contains("invalid repetition"));
        assert!(parse(r"\q").is_err());
        assert!(parse("a)").is_err());
    }

    #[test]
    fn quantified_anchor_rejected() {
        assert!(parse("^*").is_err());
        assert!(parse(r"\b+").is_err());
    }
}
