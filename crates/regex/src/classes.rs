//! Character classes.

/// A character class: a union of inclusive ranges, possibly negated.
///
/// Ranges are kept sorted and merged so membership is a binary search and
/// classes have a canonical form (useful for equality in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    ranges: Vec<(char, char)>,
    negated: bool,
}

impl CharClass {
    /// An empty, non-negated class (matches nothing).
    pub fn new() -> Self {
        CharClass {
            ranges: Vec::new(),
            negated: false,
        }
    }

    /// Class containing exactly one char.
    pub fn single(c: char) -> Self {
        let mut cls = CharClass::new();
        cls.push_range(c, c);
        cls
    }

    /// Add an inclusive range (order-normalising).
    pub fn push_range(&mut self, lo: char, hi: char) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        self.ranges.push((lo, hi));
        self.normalize();
    }

    /// Add a single char.
    pub fn push_char(&mut self, c: char) {
        self.push_range(c, c);
    }

    /// Merge another class's ranges into this one (ignores its negation).
    pub fn push_class(&mut self, other: &CharClass) {
        self.ranges.extend_from_slice(&other.ranges);
        self.normalize();
    }

    /// Negate the class.
    pub fn negate(&mut self) {
        self.negated = !self.negated;
    }

    /// Is the class negated?
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// The canonical (sorted, merged) ranges.
    pub fn ranges(&self) -> &[(char, char)] {
        &self.ranges
    }

    /// Does the class contain `c`?
    pub fn contains(&self, c: char) -> bool {
        let inside = self
            .ranges
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok();
        inside != self.negated
    }

    /// Case-insensitive variant: for every ASCII letter range, add the
    /// other case. (Full Unicode case folding is out of scope; EM data is
    /// predominantly ASCII after preprocessing.)
    pub fn to_case_insensitive(&self) -> CharClass {
        let mut out = self.clone();
        for &(lo, hi) in &self.ranges {
            // Lowercase letters overlapped by [lo, hi] → add uppercase.
            let add = |out: &mut CharClass, a: char, b: char, delta: i32| {
                let lo2 = lo.max(a);
                let hi2 = hi.min(b);
                if lo2 <= hi2 {
                    let l = char::from_u32((lo2 as i32 + delta) as u32).unwrap();
                    let h = char::from_u32((hi2 as i32 + delta) as u32).unwrap();
                    out.ranges.push((l, h));
                }
            };
            add(&mut out, 'a', 'z', -32);
            add(&mut out, 'A', 'Z', 32);
        }
        out.normalize();
        out
    }

    fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(char, char)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some(&mut (_, ref mut phi)) if lo as u32 <= *phi as u32 + 1 => {
                    if hi > *phi {
                        *phi = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }

    /// `\d`: ASCII digits.
    pub fn digit() -> Self {
        let mut c = CharClass::new();
        c.push_range('0', '9');
        c
    }

    /// `\w`: word chars `[A-Za-z0-9_]`.
    pub fn word() -> Self {
        let mut c = CharClass::new();
        c.push_range('a', 'z');
        c.push_range('A', 'Z');
        c.push_range('0', '9');
        c.push_char('_');
        c
    }

    /// `\s`: ASCII whitespace.
    pub fn space() -> Self {
        let mut c = CharClass::new();
        for ch in [' ', '\t', '\n', '\r', '\x0b', '\x0c'] {
            c.push_char(ch);
        }
        c
    }
}

impl Default for CharClass {
    fn default() -> Self {
        Self::new()
    }
}

/// Is `c` a word character (for `\b`)?
pub fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let mut c = CharClass::new();
        c.push_range('a', 'f');
        c.push_char('z');
        assert!(c.contains('c'));
        assert!(c.contains('z'));
        assert!(!c.contains('g'));
    }

    #[test]
    fn negation() {
        let mut c = CharClass::digit();
        c.negate();
        assert!(!c.contains('5'));
        assert!(c.contains('x'));
    }

    #[test]
    fn ranges_merge() {
        let mut c = CharClass::new();
        c.push_range('a', 'd');
        c.push_range('c', 'h');
        c.push_range('i', 'k'); // adjacent → merges
        assert_eq!(c.ranges(), &[('a', 'k')]);
    }

    #[test]
    fn case_insensitive_expansion() {
        let mut c = CharClass::new();
        c.push_range('a', 'c');
        let ci = c.to_case_insensitive();
        assert!(ci.contains('B'));
        assert!(ci.contains('b'));
        assert!(!ci.contains('d'));
    }

    #[test]
    fn builtin_classes() {
        assert!(CharClass::word().contains('_'));
        assert!(!CharClass::word().contains('-'));
        assert!(CharClass::space().contains('\t'));
        assert!(is_word_char('9'));
        assert!(!is_word_char(' '));
    }
}
