//! Abstract syntax tree for parsed patterns.

use crate::classes::CharClass;

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty pattern (matches the empty string).
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class `[...]`, or a class escape like `\d`.
    Class(CharClass),
    /// Concatenation of sub-patterns.
    Concat(Vec<Ast>),
    /// Alternation `a|b|c`.
    Alternate(Vec<Ast>),
    /// Repetition of a sub-pattern.
    Repeat {
        /// The repeated sub-pattern.
        node: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions; `None` = unbounded.
        max: Option<u32>,
        /// Greedy (`a*`) vs lazy (`a*?`).
        greedy: bool,
    },
    /// A group. `index` is `Some(n)` for capturing groups (1-based),
    /// `None` for `(?:...)`.
    Group {
        /// Capture index, if capturing.
        index: Option<u32>,
        /// Grouped sub-pattern.
        node: Box<Ast>,
    },
    /// `^` — start of input.
    StartAnchor,
    /// `$` — end of input.
    EndAnchor,
    /// `\b` (true) or `\B` (false).
    WordBoundary(bool),
}

impl Ast {
    /// Number of capturing groups in the tree.
    pub fn count_groups(&self) -> usize {
        match self {
            Ast::Concat(items) | Ast::Alternate(items) => items.iter().map(Ast::count_groups).sum(),
            Ast::Repeat { node, .. } => node.count_groups(),
            Ast::Group { index, node } => usize::from(index.is_some()) + node.count_groups(),
            _ => 0,
        }
    }

    /// Can this pattern match the empty string? (Used by tests and by the
    /// reference matcher to guard against infinite loops.)
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty | Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary(_) => true,
            Ast::Literal(_) | Ast::AnyChar | Ast::Class(_) => false,
            Ast::Concat(items) => items.iter().all(Ast::is_nullable),
            Ast::Alternate(items) => items.iter().any(Ast::is_nullable),
            Ast::Repeat { node, min, .. } => *min == 0 || node.is_nullable(),
            Ast::Group { node, .. } => node.is_nullable(),
        }
    }
}

#[cfg(test)]
mod tests {

    #[test]
    fn group_counting() {
        let ast = crate::parser::parse(r"(a)(?:b)((c))").unwrap();
        assert_eq!(ast.count_groups(), 3);
    }

    #[test]
    fn nullability() {
        assert!(crate::parser::parse("a*").unwrap().is_nullable());
        assert!(!crate::parser::parse("a+").unwrap().is_nullable());
        assert!(crate::parser::parse("a|").unwrap().is_nullable());
        assert!(crate::parser::parse("^$").unwrap().is_nullable());
        assert!(!crate::parser::parse("(ab)").unwrap().is_nullable());
    }
}
