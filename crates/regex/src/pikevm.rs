//! Pike VM: NFA simulation with capture slots.
//!
//! Runs in `O(insts × chars)` time regardless of the pattern — user LFs
//! cannot trigger exponential backtracking. Thread priority order gives
//! Perl-style leftmost-first / greedy semantics.

use crate::classes::is_word_char;
use crate::nfa::{Inst, Program};

type Slots = Vec<Option<usize>>;

struct ThreadList {
    threads: Vec<(usize, Slots)>,
    /// `seen[pc] == gen` marks pc as already queued this step.
    seen: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList {
            threads: Vec::new(),
            seen: vec![0; n],
            gen: 0,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }
}

/// Context needed by zero-width assertions at one input position.
#[derive(Clone, Copy)]
struct Ctx {
    /// Byte offset of the current position.
    byte: usize,
    /// Char before the position (None at input start).
    prev: Option<char>,
    /// Char at the position (None at input end).
    cur: Option<char>,
    at_start: bool,
    at_end: bool,
}

fn add_thread(prog: &Program, list: &mut ThreadList, pc: usize, slots: Slots, ctx: Ctx) {
    if list.seen[pc] == list.gen {
        return;
    }
    list.seen[pc] = list.gen;
    match &prog.insts[pc] {
        Inst::Jmp(t) => add_thread(prog, list, *t, slots, ctx),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, slots.clone(), ctx);
            add_thread(prog, list, *b, slots, ctx);
        }
        Inst::Save(n) => {
            let mut s = slots;
            if *n < s.len() {
                s[*n] = Some(ctx.byte);
            }
            add_thread(prog, list, pc + 1, s, ctx);
        }
        Inst::AssertStart => {
            if ctx.at_start {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::AssertEnd => {
            if ctx.at_end {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::WordBoundary(positive) => {
            let before = ctx.prev.map(is_word_char).unwrap_or(false);
            let after = ctx.cur.map(is_word_char).unwrap_or(false);
            if (before != after) == *positive {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::Char(_) | Inst::Class(_) | Inst::Any | Inst::Match => {
            list.threads.push((pc, slots));
        }
    }
}

/// Search for the leftmost match starting at or after byte offset `from`.
/// Returns the capture slots on success (`slots[0]`/`slots[1]` are the
/// overall match bounds and are always `Some`).
pub fn search(prog: &Program, text: &str, from: usize) -> Option<Slots> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    // First char position at/after `from`.
    let start = chars.iter().position(|&(b, _)| b >= from).unwrap_or(n);
    if from > text.len() {
        return None;
    }

    let byte_at = |sp: usize| -> usize {
        if sp < n {
            chars[sp].0
        } else {
            text.len()
        }
    };
    let ctx_at = |sp: usize| -> Ctx {
        Ctx {
            byte: byte_at(sp),
            prev: if sp > 0 { Some(chars[sp - 1].1) } else { None },
            cur: if sp < n { Some(chars[sp].1) } else { None },
            at_start: sp == 0,
            at_end: sp == n,
        }
    };

    let mut clist = ThreadList::new(prog.len());
    let mut nlist = ThreadList::new(prog.len());
    let mut matched: Option<Slots> = None;

    clist.clear();
    // Positional scan over 0..=n (one past the last char), not an iteration
    // over `chars` — an enumerate() rewrite would hide the end-of-input step.
    #[allow(clippy::needless_range_loop)]
    for sp in start..=n {
        // Inject a fresh lowest-priority thread at every position until a
        // match is found (unanchored search, leftmost preference).
        if matched.is_none() {
            add_thread(prog, &mut clist, 0, vec![None; prog.n_slots], ctx_at(sp));
        }
        if clist.threads.is_empty() {
            if matched.is_some() {
                break;
            }
            // Nothing survived the epsilon stage; reset the dedup
            // generation so the next position's injection isn't suppressed
            // by this position's `seen` marks.
            clist.clear();
            continue;
        }
        nlist.clear();
        let next_ctx = ctx_at((sp + 1).min(n));
        let mut i = 0;
        while i < clist.threads.len() {
            let (pc, slots) = std::mem::take(&mut clist.threads[i]);
            // (take leaves a dummy; cheap because Slots is a Vec)
            match &prog.insts[pc] {
                Inst::Char(c) => {
                    if sp < n && chars[sp].1 == *c {
                        add_thread(prog, &mut nlist, pc + 1, slots, next_ctx);
                    }
                }
                Inst::Class(cls) => {
                    if sp < n && cls.contains(chars[sp].1) {
                        add_thread(prog, &mut nlist, pc + 1, slots, next_ctx);
                    }
                }
                Inst::Any => {
                    if sp < n && chars[sp].1 != '\n' {
                        add_thread(prog, &mut nlist, pc + 1, slots, next_ctx);
                    }
                }
                Inst::Match => {
                    matched = Some(slots);
                    // Lower-priority threads can no longer win.
                    break;
                }
                // Epsilon instructions never appear in a thread list.
                _ => unreachable!("epsilon instruction in thread list"),
            }
            i += 1;
        }
        std::mem::swap(&mut clist, &mut nlist);
        if clist.threads.is_empty() && matched.is_some() {
            break;
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::compile;
    use crate::parser::parse;

    fn run(pat: &str, text: &str) -> Option<(usize, usize)> {
        let ast = parse(pat).unwrap();
        let prog = compile(&ast, ast.count_groups() + 1, false);
        search(&prog, text, 0).map(|s| (s[0].unwrap(), s[1].unwrap()))
    }

    #[test]
    fn leftmost_match_wins() {
        assert_eq!(run("a+", "bb aaa a"), Some((3, 6)));
    }

    #[test]
    fn empty_pattern_matches_at_start() {
        assert_eq!(run("", "abc"), Some((0, 0)));
        assert_eq!(run("x*", "abc"), Some((0, 0)));
    }

    #[test]
    fn self_loop_terminates() {
        // (a*)* could loop forever in a naive simulation.
        assert_eq!(run("(a*)*", "aaa"), Some((0, 3)));
        assert_eq!(run("(a*)*b", "aaab"), Some((0, 4)));
    }

    #[test]
    fn anchors_are_absolute() {
        let ast = parse("^b").unwrap();
        let prog = compile(&ast, 1, false);
        // Searching from offset 1 must not make ^ match at offset 1.
        assert!(search(&prog, "abc", 1).is_none());
    }

    #[test]
    fn match_at_end_of_input() {
        assert_eq!(run("c$", "abc"), Some((2, 3)));
        assert_eq!(run("$", "ab"), Some((2, 2)));
    }
}
