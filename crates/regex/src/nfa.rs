//! Thompson NFA construction.

use crate::ast::Ast;
use crate::classes::CharClass;

/// One VM instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Consume exactly this character.
    Char(char),
    /// Consume one character contained in the class.
    Class(CharClass),
    /// Consume any character except `\n`.
    Any,
    /// Try `a` first (higher priority), then `b`.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Store the current byte offset into capture slot `n`.
    Save(usize),
    /// Zero-width: only at input start.
    AssertStart,
    /// Zero-width: only at input end.
    AssertEnd,
    /// Zero-width: word boundary (`true`) / non-boundary (`false`).
    WordBoundary(bool),
    /// Accept.
    Match,
}

/// A compiled program: instruction list plus capture-slot count.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instructions; execution starts at index 0.
    pub insts: Vec<Inst>,
    /// Number of capture slots (`2 × groups`, group 0 included).
    pub n_slots: usize,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program is empty (never happens for compiled regexes).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Compile an AST into a program.
///
/// The emitted program is wrapped as `Save(0) <body> Save(1) Match`, i.e.
/// it is *anchored at its start position*; the Pike VM achieves unanchored
/// search by injecting a fresh start thread at every input position.
pub fn compile(ast: &Ast, n_groups: usize, case_insensitive: bool) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        ci: case_insensitive,
    };
    c.emit(Inst::Save(0));
    c.node(ast);
    c.emit(Inst::Save(1));
    c.emit(Inst::Match);
    Program {
        insts: c.insts,
        n_slots: 2 * n_groups,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    ci: bool,
}

impl Compiler {
    fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn patch_split_second(&mut self, at: usize, to: usize) {
        if let Inst::Split(_, b) = &mut self.insts[at] {
            *b = to;
        }
    }

    fn patch_split_first(&mut self, at: usize, to: usize) {
        if let Inst::Split(a, _) = &mut self.insts[at] {
            *a = to;
        }
    }

    fn patch_jmp(&mut self, at: usize, to: usize) {
        if let Inst::Jmp(t) = &mut self.insts[at] {
            *t = to;
        }
    }

    fn node(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                if self.ci && c.is_alphabetic() {
                    let mut cls = CharClass::single(*c);
                    cls = cls.to_case_insensitive();
                    // Non-ASCII: also add the simple upper/lower fold.
                    for f in c.to_lowercase().chain(c.to_uppercase()) {
                        cls.push_char(f);
                    }
                    self.emit(Inst::Class(cls));
                } else {
                    self.emit(Inst::Char(*c));
                }
            }
            Ast::AnyChar => {
                self.emit(Inst::Any);
            }
            Ast::Class(cls) => {
                let cls = if self.ci {
                    cls.to_case_insensitive()
                } else {
                    cls.clone()
                };
                self.emit(Inst::Class(cls));
            }
            Ast::Concat(items) => {
                for item in items {
                    self.node(item);
                }
            }
            Ast::Alternate(branches) => {
                // split b1, (split b2, (… bn))  with jumps to the common end.
                let mut jumps = Vec::new();
                let mut splits = Vec::new();
                for (i, branch) in branches.iter().enumerate() {
                    let last = i + 1 == branches.len();
                    if !last {
                        let s = self.emit(Inst::Split(0, 0));
                        let body = self.here();
                        self.patch_split_first(s, body);
                        splits.push(s);
                        self.node(branch);
                        jumps.push(self.emit(Inst::Jmp(0)));
                        let next = self.here();
                        self.patch_split_second(s, next);
                    } else {
                        self.node(branch);
                    }
                }
                let end = self.here();
                for j in jumps {
                    self.patch_jmp(j, end);
                }
                let _ = splits;
            }
            Ast::Group { index, node } => {
                if let Some(i) = index {
                    self.emit(Inst::Save(2 * (*i as usize)));
                    self.node(node);
                    self.emit(Inst::Save(2 * (*i as usize) + 1));
                } else {
                    self.node(node);
                }
            }
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => {
                self.repeat(node, *min, *max, *greedy);
            }
            Ast::StartAnchor => {
                self.emit(Inst::AssertStart);
            }
            Ast::EndAnchor => {
                self.emit(Inst::AssertEnd);
            }
            Ast::WordBoundary(positive) => {
                self.emit(Inst::WordBoundary(*positive));
            }
        }
    }

    fn repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Cap expansion so pathological `{100000}` patterns cannot make the
        // program explode; the parser guarantees min/max ≤ REPEAT_LIMIT.
        match (min, max) {
            (0, None) => self.star(node, greedy),
            (1, None) => {
                // plus: body, split back
                let body = self.here();
                self.node(node);
                let s = self.emit(Inst::Split(0, 0));
                let after = self.here();
                if greedy {
                    self.patch_split_first(s, body);
                    self.patch_split_second(s, after);
                } else {
                    self.patch_split_first(s, after);
                    self.patch_split_second(s, body);
                }
            }
            (n, None) => {
                for _ in 0..n.saturating_sub(1) {
                    self.node(node);
                }
                self.repeat(node, 1, None, greedy);
            }
            (n, Some(m)) => {
                for _ in 0..n {
                    self.node(node);
                }
                // (m-n) nested optionals, each can bail to the end.
                let mut splits = Vec::new();
                for _ in n..m {
                    let s = self.emit(Inst::Split(0, 0));
                    let body = self.here();
                    if greedy {
                        self.patch_split_first(s, body);
                    } else {
                        self.patch_split_second(s, body);
                    }
                    splits.push(s);
                    self.node(node);
                }
                let end = self.here();
                for s in splits {
                    if greedy {
                        self.patch_split_second(s, end);
                    } else {
                        self.patch_split_first(s, end);
                    }
                }
            }
        }
    }

    fn star(&mut self, node: &Ast, greedy: bool) {
        let s = self.emit(Inst::Split(0, 0));
        let body = self.here();
        self.node(node);
        self.emit(Inst::Jmp(s));
        let after = self.here();
        if greedy {
            self.patch_split_first(s, body);
            self.patch_split_second(s, after);
        } else {
            self.patch_split_first(s, after);
            self.patch_split_second(s, body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(pat: &str) -> Program {
        let ast = parse(pat).unwrap();
        compile(&ast, ast.count_groups() + 1, false)
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        // Save(0), Char(a), Char(b), Save(1), Match
        assert_eq!(p.len(), 5);
        assert!(matches!(p.insts[1], Inst::Char('a')));
        assert!(matches!(p.insts[4], Inst::Match));
    }

    #[test]
    fn star_is_a_loop() {
        let p = prog("a*");
        let has_split = p.insts.iter().any(|i| matches!(i, Inst::Split(_, _)));
        let has_jmp = p.insts.iter().any(|i| matches!(i, Inst::Jmp(_)));
        assert!(has_split && has_jmp);
    }

    #[test]
    fn counted_expands() {
        let p3 = prog("a{3}");
        let chars = p3
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 3);
        let p = prog("a{2,4}");
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 4);
    }

    #[test]
    fn capture_groups_emit_saves() {
        let p = prog("(a)(b)");
        let saves: Vec<usize> = p
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Save(n) => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(saves, vec![0, 2, 3, 4, 5, 1]);
        assert_eq!(p.n_slots, 6);
    }
}
