//! Differential property tests: Pike VM vs the set-of-positions oracle.

use panda_regex::testutil::backtrack_is_match;
use panda_regex::{parser, Regex};
use proptest::prelude::*;

/// A strategy for random patterns over a tiny alphabet, built from the AST
/// grammar (so every generated pattern parses by construction when
/// rendered).
fn pattern_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "."]).prop_map(str::to_string),
        Just(r"\d".to_string()),
        Just(r"\w".to_string()),
        Just("[ab]".to_string()),
        Just("[^a]".to_string()),
        Just("[a-c]".to_string()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // concat
            prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.concat()),
            // alternation
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("(?:{a}|{b})")),
            // star / plus / optional / counted
            inner.clone().prop_map(|a| format!("(?:{a})*")),
            inner.clone().prop_map(|a| format!("(?:{a})+")),
            inner.clone().prop_map(|a| format!("(?:{a})?")),
            inner.clone().prop_map(|a| format!("(?:{a}){{2,3}}")),
            // capturing group
            inner.prop_map(|a| format!("({a})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The Pike VM and the oracle must agree on whether a match exists.
    #[test]
    fn pikevm_agrees_with_oracle(
        pat in pattern_strategy(),
        text in "[abc d]{0,10}",
    ) {
        let ast = parser::parse(&pat).expect("generated pattern must parse");
        let re = Regex::new(&pat).expect("generated pattern must compile");
        let expected = backtrack_is_match(&ast, &text);
        let got = re.is_match(&text);
        prop_assert_eq!(
            got, expected,
            "pattern {:?} on text {:?}: pikevm={}, oracle={}",
            pat, text, got, expected
        );
    }

    /// find() bounds are consistent: within the text, on char boundaries,
    /// start ≤ end, and the matched slice re-matches.
    #[test]
    fn find_bounds_are_sane(
        pat in pattern_strategy(),
        text in "[abc d]{0,10}",
    ) {
        let re = Regex::new(&pat).expect("generated pattern must compile");
        if let Some(m) = re.find(&text) {
            prop_assert!(m.start <= m.end);
            prop_assert!(m.end <= text.len());
            prop_assert!(text.is_char_boundary(m.start));
            prop_assert!(text.is_char_boundary(m.end));
            // An anchored-at-start re-check of the matched substring: the
            // pattern must match *somewhere* in it unless it's empty-width
            // (it matched there after all) — weaker but still useful:
            if !m.is_empty() {
                prop_assert!(re.is_match(m.as_str()));
            }
        }
    }

    /// find_iter terminates and yields non-overlapping, ordered matches.
    #[test]
    fn find_iter_is_ordered_and_disjoint(
        pat in pattern_strategy(),
        text in "[abc d]{0,10}",
    ) {
        let re = Regex::new(&pat).expect("generated pattern must compile");
        let matches: Vec<_> = re.find_iter(&text).collect();
        for w in matches.windows(2) {
            prop_assert!(w[0].end <= w[1].start || (w[0].is_empty() && w[0].start < w[1].start));
        }
    }
}

#[test]
fn known_divergence_cases() {
    // Regression pocket for cases that once differed between engines.
    for (pat, text, expect) in [
        ("(a|aa){2}", "aab", true),
        ("(a|aa){2}", "a", false),
        ("(a*)*b", "b", true),
        ("(?:ab|a)(?:b|c)", "ac", true),
        (r"\d{2,3}", "1", false),
        (r"\d{2,3}", "12345", true),
    ] {
        let ast = parser::parse(pat).unwrap();
        assert_eq!(
            Regex::new(pat).unwrap().is_match(text),
            expect,
            "pikevm on {pat:?} / {text:?}"
        );
        assert_eq!(
            backtrack_is_match(&ast, text),
            expect,
            "oracle on {pat:?} / {text:?}"
        );
    }
}
