//! **A2 — ablation: the transitivity constraint** (§2.1 feature 3, second
//! property; ZeroER). Transitivity binds where one tuple can match
//! several others — duplicate clusters. We sweep the cluster size of a
//! Cora-style dedup task and compare the Panda model with and without the
//! transitivity projection (identical LFs, identical matrices).
//!
//! Run: `cargo run --release -p panda-bench --bin a2_transitivity`

use panda_bench::{curated_lfs, mean, write_csv};
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_eval::TextTable;
use panda_model::TransitivityMode;
use panda_session::{ModelChoice, PandaSession, SessionConfig};

fn main() {
    panda_bench::init_obs();
    let mut table = TextTable::new(&[
        "max_cluster_size",
        "gold_pairs",
        "panda_f1",
        "panda+trans_f1",
        "delta",
    ]);
    println!("A2: transitivity projection vs duplicate-cluster size (cora-dedup)\n");
    for cluster in [2usize, 3, 4, 5, 6] {
        let mut base = Vec::new();
        let mut trans = Vec::new();
        let mut gold_sizes = Vec::new();
        for seed in [41u64, 42, 43] {
            let task = generate(
                DatasetFamily::CoraDedup,
                &GeneratorConfig::new(seed)
                    .with_entities(120)
                    .with_right_dups(cluster),
            );
            gold_sizes.push(task.gold.as_ref().unwrap().len() as f64);
            for (choice, out) in [
                (ModelChoice::Panda, &mut base),
                (
                    ModelChoice::PandaTransitive(TransitivityMode::SelfJoin),
                    &mut trans,
                ),
            ] {
                let mut s = PandaSession::load(
                    task.clone(),
                    SessionConfig {
                        model: choice,
                        ..SessionConfig::default()
                    },
                );
                for lf in curated_lfs(DatasetFamily::CoraDedup) {
                    s.upsert_lf(lf);
                }
                s.apply();
                out.push(s.current_metrics().unwrap().f1);
            }
        }
        let (b, t) = (mean(&base), mean(&trans));
        table.row(&[
            cluster.to_string(),
            format!("{:.0}", mean(&gold_sizes)),
            format!("{b:.3}"),
            format!("{t:.3}"),
            format!("{:+.3}", t - b),
        ]);
    }
    println!("{}", table.render());
    println!("The shape to check: at cluster size 2 there are few triangles and the");
    println!("projection is nearly a no-op; as clusters grow, transitive boosting of");
    println!("missed within-cluster edges lifts recall and F1 (the ZeroER property).");
    write_csv("a2_transitivity", &table);
}
