//! **E5 — blocking and smart sampling** (§2.1 feature 1.1, §4):
//!
//! (a) Blocking: the paper blocks with sentence embeddings + LSH. We
//!     compare that pipeline against token blocking and sorted
//!     neighbourhood on candidate-set size vs gold recall.
//! (b) Smart sampling: "randomly sampled pairs are likely non-matches…
//!     not very useful." We count how many *true* matches (that the
//!     current model missed) appear in the top-k sample, smart vs random.
//!
//! Run: `cargo run --release -p panda-bench --bin e5_blocking_sampling`

use panda_bench::write_csv;
use panda_datasets::{generate, standard_suite, DatasetFamily, GeneratorConfig};
use panda_embed::{
    blocking_stats, Blocker, EmbeddingLshBlocker, SortedNeighborhoodBlocker, TokenBlocker,
};
use panda_eval::TextTable;
use panda_session::{PandaSession, SessionConfig};

fn main() {
    panda_bench::init_obs();
    // ---------------- (a) blocking comparison ----------------
    let mut t1 = TextTable::new(&["dataset", "blocker", "candidates", "recall", "reduction"]);
    for (name, task) in standard_suite(17) {
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(EmbeddingLshBlocker::new(17)),
            Box::new(panda_embed::MinHashBlocker::new(17)),
            Box::new(TokenBlocker::default()),
            Box::new(SortedNeighborhoodBlocker::default()),
        ];
        for b in blockers {
            let cands = b.candidates(&task);
            let s = blocking_stats(&task, &cands);
            t1.row(&[
                name.clone(),
                b.name().to_string(),
                s.candidates.to_string(),
                format!("{:.3}", s.recall),
                format!("{:.4}", s.reduction_ratio),
            ]);
        }
    }
    println!("E5a: blocking — candidate set size vs gold recall\n");
    println!("{}", t1.render());
    println!("The shape to check: embedding-LSH keeps recall high (≥0.9) at a small");
    println!("fraction of the cross product; sorted neighbourhood trades recall away.\n");
    write_csv("e5a_blocking", &t1);

    // ---------------- (b) sampler comparison ----------------
    // The Step-2 situation: the user has only a weak, low-recall LF set,
    // so plenty of true matches are still missed. A useful sampler
    // surfaces those missed matches; random sampling mostly shows junk
    // (the §2.1 class-imbalance argument).
    let mut t2 = TextTable::new(&["k", "smart", "uncertainty", "random", "missed_total"]);
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(19).with_entities(300),
    );
    println!("E5b: missed true matches surfaced in one k-pair sample\n");
    let weak_session = || {
        let mut s = PandaSession::load(
            task.clone(),
            SessionConfig {
                auto_lfs: false,
                ..SessionConfig::default()
            },
        );
        // One deliberately strict LF: high precision, poor recall.
        s.upsert_lf(std::sync::Arc::new(panda_lf::SimilarityLf::new(
            "name_overlap_strict",
            "name",
            panda_text::SimilarityConfig::default_jaccard(),
            0.85,
            0.1,
        )));
        s.apply();
        s
    };
    // A surfaced pair counts only if it is a gold match the model missed.
    let hit = |r: &panda_session::DataViewerRow| {
        r.gold == Some(true) && r.model_gamma.unwrap_or(1.0) < 0.5
    };
    {
        let s = weak_session();
        let gold = s.gold_vector().unwrap();
        let missed = s
            .posteriors()
            .iter()
            .zip(&gold)
            .filter(|(&g, &t)| t && g < 0.5)
            .count();
        println!(
            "(weak LF set leaves {missed} of {} gold matches unfound)\n",
            gold.iter().filter(|&&t| t).count()
        );
    }
    for k in [10usize, 25, 50, 100] {
        // Fresh sessions so "already shown" state doesn't leak between ks.
        let smart = weak_session()
            .smart_sample(k)
            .iter()
            .filter(|r| hit(r))
            .count();
        let unc = weak_session()
            .uncertainty_sample(k)
            .iter()
            .filter(|r| hit(r))
            .count();
        let rand = weak_session()
            .random_sample(k)
            .iter()
            .filter(|r| hit(r))
            .count();
        let s = weak_session();
        let gold = s.gold_vector().unwrap();
        let missed = s
            .posteriors()
            .iter()
            .zip(&gold)
            .filter(|(&g, &t)| t && g < 0.5)
            .count();
        t2.row(&[
            k.to_string(),
            smart.to_string(),
            unc.to_string(),
            rand.to_string(),
            missed.to_string(),
        ]);
    }
    println!("{}", t2.render());
    println!("The shape to check: smart sampling surfaces several× more missed true");
    println!("matches per click than random sampling (the class-imbalance argument");
    println!("of §2.1); uncertainty sampling sits between (it hunts the boundary).");
    write_csv("e5b_sampling", &t2);
}
