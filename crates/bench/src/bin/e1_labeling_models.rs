//! **E1 — the headline claim** (paper §2.1, feature 3): "our labeling
//! model improves the F1-score of the state-of-the-art labeling model
//! [Snorkel] by 12% on average" on real-world benchmark datasets.
//!
//! For every benchmark family (the extended suite: the five standard
//! tasks plus the dirty and schema-mismatched product variants) we build
//! the full LF set (auto-generated + curated), apply it once, then fit
//! majority vote, the Snorkel-style generative model, and the Panda model
//! on the *same* label matrix.
//! Averaged over seeds; the last rows report the average F1 and the
//! relative uplift of Panda over Snorkel.
//!
//! Run: `cargo run --release -p panda-bench --bin e1_labeling_models`

use panda_bench::{curated_lfs, mean, write_csv};
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_eval::metrics::metrics_at_half;
use panda_eval::TextTable;
use panda_model::{LabelModel, MajorityVote, PandaModel, SnorkelModel};
use panda_session::{PandaSession, SessionConfig};

fn main() {
    panda_bench::init_obs();
    let seeds = [1u64, 2, 3];
    let mut table = TextTable::new(&[
        "dataset",
        "majority",
        "snorkel-2021",
        "snorkel-robust",
        "panda",
        "vs-2021",
        "vs-robust",
    ]);
    let mut uplift_plain = Vec::new();
    let mut uplift_robust = Vec::new();
    let mut avg = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];

    for family in DatasetFamily::extended_suite() {
        let mut f1 = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for &seed in &seeds {
            let task = generate(family, &GeneratorConfig::new(seed).with_entities(250));
            let mut session = PandaSession::load(task, SessionConfig::default());
            for lf in curated_lfs(family) {
                session.upsert_lf(lf);
            }
            session.apply();
            let gold = session.gold_vector().expect("benchmark gold");
            let matrix = session.matrix();
            let cands = session.candidates();

            // Two baselines bracket the comparison:
            //  * snorkel-2021: the conditionally-independent model as the
            //    paper compared against — no correlation handling, so the
            //    intentionally-correlated auto LFs get double counted;
            //  * snorkel-robust: the same model with our near-duplicate
            //    evidence discounts, the strongest generic baseline we can
            //    build. Panda gets the discounts too, so the vs-robust
            //    column isolates the EM-specific parametrization.
            let mv = MajorityVote::default().fit_predict(matrix, Some(cands));
            let sn_plain = SnorkelModel::new().fit_predict(matrix, Some(cands));
            let sn_robust = SnorkelModel::new()
                .with_correlation_discounts(0.95)
                .fit_predict(matrix, Some(cands));
            let pd = PandaModel::new()
                .with_correlation_discounts(0.95)
                .fit_predict(matrix, Some(cands));
            f1[0].push(metrics_at_half(&mv, &gold).f1);
            f1[1].push(metrics_at_half(&sn_plain, &gold).f1);
            f1[2].push(metrics_at_half(&sn_robust, &gold).f1);
            f1[3].push(metrics_at_half(&pd, &gold).f1);
        }
        let means: Vec<f64> = f1.iter().map(|v| mean(v)).collect();
        let up_plain = if means[1] > 0.0 {
            (means[3] - means[1]) / means[1] * 100.0
        } else {
            0.0
        };
        let up_robust = if means[2] > 0.0 {
            (means[3] - means[2]) / means[2] * 100.0
        } else {
            0.0
        };
        uplift_plain.push(up_plain);
        uplift_robust.push(up_robust);
        for (slot, m) in avg.iter_mut().zip(&means) {
            slot.push(*m);
        }
        table.row(&[
            family.name().to_string(),
            format!("{:.3}", means[0]),
            format!("{:.3}", means[1]),
            format!("{:.3}", means[2]),
            format!("{:.3}", means[3]),
            format!("{up_plain:+.1}%"),
            format!("{up_robust:+.1}%"),
        ]);
    }
    table.row(&[
        "AVERAGE".to_string(),
        format!("{:.3}", mean(&avg[0])),
        format!("{:.3}", mean(&avg[1])),
        format!("{:.3}", mean(&avg[2])),
        format!("{:.3}", mean(&avg[3])),
        format!("{:+.1}%", mean(&uplift_plain)),
        format!("{:+.1}%", mean(&uplift_robust)),
    ]);

    println!(
        "E1: labeling model comparison, F1 at threshold 0.5 (mean of {} seeds)\n",
        seeds.len()
    );
    println!("{}", table.render());
    println!(
        "Paper's claim: Panda model improves F1 over the Snorkel labeling model by 12% on average."
    );
    write_csv("e1_labeling_models", &table);
}
