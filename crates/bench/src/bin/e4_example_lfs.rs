//! **E4 — the paper's example LFs** (Figures 1–2): `name_overlap` and
//! `size_unmatch` ported verbatim to the builder DSL + regex engine, and
//! measured on abt-buy-like data: coverage, vote polarity, and the
//! empirical accuracy of each polarity against gold.
//!
//! Run: `cargo run --release -p panda-bench --bin e4_example_lfs`

use panda_bench::write_csv;
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_eval::TextTable;
use panda_lf::{ExtractionLf, LabelMatrix, LfRegistry, SimilarityLf};
use panda_table::TablePair;
use panda_text::SimilarityConfig;
use std::sync::Arc;

fn main() {
    panda_bench::init_obs();
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(13).with_entities(300),
    );
    let blocker = panda_embed::EmbeddingLshBlocker::new(13);
    let candidates = panda_embed::Blocker::candidates(&blocker, &task);
    let gold: Vec<bool> = candidates
        .pairs()
        .iter()
        .map(|p| task.gold.as_ref().unwrap().contains(p))
        .collect();

    let mut reg = LfRegistry::new();
    // Figure 2 left: token overlap of "name", > 0.6 → +1, < 0.1 → −1.
    reg.upsert(Arc::new(SimilarityLf::new(
        "name_overlap",
        "name",
        SimilarityConfig::default_jaccard(),
        0.6,
        0.1,
    )));
    // Figure 2 right: regex-extracted sizes disagree → −1.
    reg.upsert(Arc::new(ExtractionLf::size_unmatch(&[
        "name",
        "description",
    ])));

    let mut matrix = LabelMatrix::new();
    let report = matrix.apply(&reg, &task, &candidates);
    assert!(report.failed.is_empty());

    let mut table = TextTable::new(&[
        "lf",
        "coverage",
        "votes_+1",
        "votes_-1",
        "acc_of_+1",
        "acc_of_-1",
    ]);
    for name in ["name_overlap", "size_unmatch"] {
        let col = matrix.column(name).unwrap();
        let stats = vote_accuracy(&col, &gold);
        table.row(&[
            name.to_string(),
            format!("{:.3}", stats.coverage),
            stats.pos.to_string(),
            stats.neg.to_string(),
            format!("{:.3}", stats.pos_acc),
            format!("{:.3}", stats.neg_acc),
        ]);
    }

    println!(
        "E4: the paper's Figure-2 example LFs on abt-buy ({} candidates)\n",
        candidates.len()
    );
    println!("{}", table.render());
    println!("The shape to check: both LFs are far better than random on the pairs");
    println!("they vote on (the data-programming requirement), with partial coverage —");
    println!("name_overlap votes both ways; size_unmatch only ever votes -1.");
    write_csv("e4_example_lfs", &table);
    let _ = &task as &TablePair;
}

struct VoteAccuracy {
    coverage: f64,
    pos: usize,
    neg: usize,
    pos_acc: f64,
    neg_acc: f64,
}

fn vote_accuracy(col: &[i8], gold: &[bool]) -> VoteAccuracy {
    let mut pos = 0usize;
    let mut pos_ok = 0usize;
    let mut neg = 0usize;
    let mut neg_ok = 0usize;
    for (&v, &g) in col.iter().zip(gold) {
        if v > 0 {
            pos += 1;
            if g {
                pos_ok += 1;
            }
        } else if v < 0 {
            neg += 1;
            if !g {
                neg_ok += 1;
            }
        }
    }
    VoteAccuracy {
        coverage: (pos + neg) as f64 / col.len().max(1) as f64,
        pos,
        neg,
        pos_acc: if pos == 0 {
            f64::NAN
        } else {
            pos_ok as f64 / pos as f64
        },
        neg_acc: if neg == 0 {
            f64::NAN
        } else {
            neg_ok as f64 / neg as f64
        },
    }
}
