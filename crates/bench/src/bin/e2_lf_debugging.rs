//! **E2 — semantic debugging** (Figure 3(1) + §3 Step 4): the demo user
//! sorts the LF Stats Panel by estimated FPR, finds `name_overlap` at
//! 0.1402, inspects its likely false positives, tightens the match
//! threshold from 0.4 to 0.6, and watches the FPR drop to 0.0094.
//!
//! We sweep the threshold over a grid and report the model-estimated FPR
//! next to the true FPR (available because the benchmark has gold),
//! showing (a) FPR falls monotonically-ish as the threshold tightens and
//! (b) the model's estimate tracks the truth without using it.
//!
//! Run: `cargo run --release -p panda-bench --bin e2_lf_debugging`

use panda_bench::write_csv;
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_eval::TextTable;
use panda_session::{PandaSession, SessionConfig};
use panda_text::SimilarityConfig;
use std::sync::Arc;

fn main() {
    panda_bench::init_obs();
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(11).with_entities(300),
    );
    let mut session = PandaSession::load(task, SessionConfig::default());

    let mut table = TextTable::new(&[
        "threshold",
        "votes_+1",
        "est_fpr",
        "true_fpr",
        "est_fnr",
        "true_fnr",
    ]);
    println!("E2: name_overlap threshold sweep (the Step-4 debugging loop)\n");

    for threshold in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        session.upsert_lf(Arc::new(panda_lf::SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            threshold,
            0.1_f64.min(threshold / 2.0),
        )));
        session.apply();
        let row = session
            .lf_stats()
            .into_iter()
            .find(|r| r.name == "name_overlap")
            .expect("LF registered");
        table.row(&[
            format!("{threshold:.1}"),
            row.n_match.to_string(),
            format!("{:.4}", row.est_fpr.unwrap_or(f64::NAN)),
            format!("{:.4}", row.true_fpr.unwrap_or(f64::NAN)),
            format!("{:.4}", row.est_fnr.unwrap_or(f64::NAN)),
            format!("{:.4}", row.true_fnr.unwrap_or(f64::NAN)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper's narration: est. FPR 0.1402 at threshold 0.4 → 0.0094 after tightening to 0.6."
    );
    println!("The shape to check: est_fpr drops by an order of magnitude between 0.4 and 0.6,");
    println!("and est_fpr tracks true_fpr without access to ground truth.");
    write_csv("e2_lf_debugging", &table);
}
