//! **E6 — automatically generated LFs** (§2.1 feature 1.3): the
//! Auto-FuzzyJoin generator's label-free precision estimates vs true
//! precision, and the labeling model's F1 with auto LFs only, curated LFs
//! only, and both.
//!
//! Run: `cargo run --release -p panda-bench --bin e6_auto_lfs`

use panda_autolf::{generate_auto_lfs, AutoLfConfig};
use panda_bench::{curated_lfs, write_csv};
use panda_datasets::{standard_suite, DatasetFamily};
use panda_eval::metrics::metrics_at_half;
use panda_eval::TextTable;
use panda_lf::{LabelMatrix, LabelingFunction, LfRegistry};
use panda_model::{LabelModel, PandaModel};
use panda_session::{PandaSession, SessionConfig};

fn main() {
    panda_bench::init_obs();
    // --- per-LF estimate quality -----------------------------------
    let mut t1 = TextTable::new(&[
        "dataset",
        "lf",
        "attr",
        "config",
        "threshold",
        "est_precision",
        "true_precision",
        "support",
    ]);
    for (name, task) in standard_suite(23) {
        let blocker = panda_embed::EmbeddingLshBlocker::new(23);
        let cands = panda_embed::Blocker::candidates(&blocker, &task);
        let gold = task.gold.as_ref().unwrap();
        for g in generate_auto_lfs(&task, &cands, &AutoLfConfig::default()) {
            let mut tp = 0usize;
            let mut pos = 0usize;
            for (_, pair) in cands.iter() {
                let p = task.pair_ref(pair).unwrap();
                if g.lf.label(&p) == panda_lf::Label::Match {
                    pos += 1;
                    if gold.contains(&pair) {
                        tp += 1;
                    }
                }
            }
            let true_p = if pos == 0 {
                f64::NAN
            } else {
                tp as f64 / pos as f64
            };
            t1.row(&[
                name.clone(),
                g.lf.name().to_string(),
                g.attribute.clone(),
                g.config_id.clone(),
                format!("{:.2}", g.threshold),
                format!("{:.3}", g.est_precision),
                format!("{true_p:.3}"),
                g.est_support.to_string(),
            ]);
        }
    }
    println!("E6a: auto-generated LFs — estimated (label-free) vs true precision\n");
    println!("{}", t1.render());
    println!("The shape to check: est_precision is a usable guide to true_precision");
    println!("(reference-table uniqueness violations predict false positives).\n");
    write_csv("e6a_auto_lf_estimates", &t1);

    // --- F1: auto only vs manual only vs both ------------------------
    let mut t2 = TextTable::new(&["dataset", "auto_only", "curated_only", "auto+curated"]);
    for family in DatasetFamily::suite() {
        let task = panda_datasets::generate(
            family,
            &panda_datasets::GeneratorConfig::new(29).with_entities(250),
        );
        // Auto only: the default session.
        let auto = PandaSession::load(task.clone(), SessionConfig::default());
        let f1_auto = auto.current_metrics().unwrap().f1;

        // Curated only.
        let mut reg = LfRegistry::new();
        for lf in curated_lfs(family) {
            reg.upsert(lf);
        }
        let cands = auto.candidates().clone();
        let mut matrix = LabelMatrix::new();
        matrix.apply(&reg, &task, &cands);
        let gold = auto.gold_vector().unwrap();
        let gamma = PandaModel::new().fit_predict(&matrix, Some(&cands));
        let f1_manual = metrics_at_half(&gamma, &gold).f1;

        // Both.
        let mut both = PandaSession::load(task, SessionConfig::default());
        for lf in curated_lfs(family) {
            both.upsert_lf(lf);
        }
        both.apply();
        let f1_both = both.current_metrics().unwrap().f1;

        t2.row(&[
            family.name().to_string(),
            format!("{f1_auto:.3}"),
            format!("{f1_manual:.3}"),
            format!("{f1_both:.3}"),
        ]);
    }
    println!("E6b: Panda-model F1 by LF source\n");
    println!("{}", t2.render());
    println!("The shape to check: auto LFs alone are already useful (no code written);");
    println!("curated LFs add domain signals (sizes, prices); the union is best or tied.");
    write_csv("e6b_auto_vs_manual", &t2);
}
