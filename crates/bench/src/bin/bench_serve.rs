//! **Serve benchmark** — closed-loop load generator against an
//! in-process `panda-serve` instance.
//!
//! Boots the server on an ephemeral port, loads one session (incremental
//! LF add + fit), then drives three request classes with `CLIENTS`
//! closed-loop client threads each (a client issues a request, waits for
//! the response, repeats — so concurrency is exactly the client count):
//!
//! * `healthz` — wire + dispatch floor, no session work;
//! * `match_single_pair` — one ad-hoc pair scored under the session lock;
//! * `query_debug` — a debug-panel query (sort + render of viewer rows).
//!
//! Reports throughput and p50/p95/p99 latency per class and writes the
//! committed `BENCH_serve.json` snapshot.
//!
//! Set `PANDA_BENCH_STATE_DIR=<dir>` to run the server with the durable
//! session store attached and add an `lf_upsert_durable` case (one WAL
//! append + fsync per request) — measuring the durability tax without
//! touching the committed default-mode snapshot.
//!
//! Run: `cargo run --release -p panda-bench --bin bench_serve`

use panda_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Closed-loop clients per case.
const CLIENTS: usize = 4;
/// Requests each client issues per case.
const REQUESTS_PER_CLIENT: usize = 150;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    (status, body)
}

/// A product-matching table pair large enough that session requests do
/// real work (blocking yields a few hundred candidates).
fn demo_csvs() -> (String, String) {
    let brands = [
        "acme", "zenith", "orion", "vertex", "nimbus", "quartz", "ember", "cobalt", "argon",
        "helix", "lumen", "strata", "pivot", "crest", "fable", "garnet",
    ];
    let kinds = ["widget", "gadget", "sprocket", "fixture"];
    let mut left = String::from("id,name,price\n");
    let mut right = String::from("id,name,price\n");
    let mut row = 0usize;
    for brand in &brands {
        for kind in &kinds {
            left.push_str(&format!(
                "{row},{brand} turbo {kind} model {row},{}\n",
                100 + row * 3
            ));
            right.push_str(&format!(
                "{row},{brand} {kind} turbo mk {row},{}\n",
                101 + row * 3
            ));
            row += 1;
        }
    }
    (left, right)
}

struct CaseResult {
    name: &'static str,
    requests: usize,
    elapsed_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

impl CaseResult {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed_s
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Run one request class closed-loop and collect latencies.
fn run_case(
    name: &'static str,
    addr: SocketAddr,
    method: &'static str,
    path: String,
    body: String,
) -> CaseResult {
    // Warm-up outside the measurement.
    let (status, resp) = request(addr, method, &path, &body);
    assert_eq!(status, 200, "{name}: {resp}");

    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let path = path.clone();
        let body = body.clone();
        handles.push(std::thread::spawn(move || {
            let mut latencies_ns = Vec::with_capacity(REQUESTS_PER_CLIENT);
            for _ in 0..REQUESTS_PER_CLIENT {
                let t = Instant::now();
                let (status, _) = request(addr, method, &path, &body);
                latencies_ns.push(t.elapsed().as_nanos() as u64);
                assert_eq!(status, 200, "{name}: non-200 under load");
            }
            latencies_ns
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed_s = started.elapsed().as_secs_f64();
    all.sort_unstable();
    CaseResult {
        name,
        requests: all.len(),
        elapsed_s,
        p50_us: percentile(&all, 0.50),
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
    }
}

fn main() {
    let workers = panda_exec::worker_count();
    let state_dir = std::env::var_os("PANDA_BENCH_STATE_DIR").map(std::path::PathBuf::from);
    let handle = Server::start(ServerConfig {
        workers,
        state_dir: state_dir.clone(),
        ..Default::default()
    })
    .expect("start server");
    let addr = handle.addr();

    // One session for the whole run: create, add an LF incrementally, fit.
    let (left_csv, right_csv) = demo_csvs();
    let create = format!(
        r#"{{"left_csv":{},"right_csv":{},"config":{{"auto_lfs":false}}}}"#,
        serde_json::to_string(&left_csv).unwrap(),
        serde_json::to_string(&right_csv).unwrap()
    );
    let (status, body) = request(addr, "POST", "/sessions", &create);
    assert_eq!(status, 200, "create session: {body}");
    let lf = r#"{"name":"name_overlap","kind":"similarity","attr":"name","upper":0.5,"lower":0.1}"#;
    let (status, body) = request(addr, "POST", "/sessions/1/lfs", lf);
    assert_eq!(status, 200, "add lf: {body}");
    let (status, body) = request(addr, "POST", "/sessions/1/fit", "");
    assert_eq!(status, 200, "fit: {body}");

    let mut cases = vec![
        run_case("healthz", addr, "GET", "/healthz".into(), String::new()),
        run_case(
            "match_single_pair",
            addr,
            "POST",
            "/match".into(),
            r#"{"session":1,"pairs":[[3,3]]}"#.into(),
        ),
        run_case(
            "query_debug",
            addr,
            "POST",
            "/sessions/1/query".into(),
            r#"{"lf":"name_overlap","query":"VotedMatch","limit":10}"#.into(),
        ),
    ];
    if state_dir.is_some() {
        // Re-upserting the same LF recomputes one matrix column and WAL-
        // logs (append + fsync) every request: the durability hot path.
        cases.push(run_case(
            "lf_upsert_durable",
            addr,
            "POST",
            "/sessions/1/lfs".into(),
            lf.to_string(),
        ));
    }

    println!(
        "bench_serve: {workers} workers, {CLIENTS} closed-loop clients × {REQUESTS_PER_CLIENT} requests"
    );
    let mut case_json = Vec::new();
    for c in &cases {
        println!(
            "  {:<18} {:>7.0} req/s   p50 {:>8.1} µs   p95 {:>8.1} µs   p99 {:>8.1} µs",
            c.name,
            c.throughput(),
            c.p50_us,
            c.p95_us,
            c.p99_us
        );
        case_json.push(format!(
            concat!(
                "    {{\"case\": \"{}\", \"requests\": {}, \"throughput_rps\": {:.1}, ",
                "\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}"
            ),
            c.name,
            c.requests,
            c.throughput(),
            c.p50_us,
            c.p95_us,
            c.p99_us
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_closed_loop\",\n  \"config\": {{\"workers\": {workers}, \
         \"clients\": {CLIENTS}, \"requests_per_client\": {REQUESTS_PER_CLIENT}}},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        case_json.join(",\n")
    );
    if state_dir.is_none() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(path, &json).expect("write BENCH_serve.json");
        println!("wrote {path}");
    } else {
        println!("durable mode (PANDA_BENCH_STATE_DIR set): BENCH_serve.json left untouched");
    }

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
}
