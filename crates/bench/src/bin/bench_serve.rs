//! **Serve benchmark** — closed-loop load generator against an
//! in-process `panda-serve` instance.
//!
//! Boots the server on an ephemeral port, loads one session (incremental
//! LF add + fit), then drives request classes with `CLIENTS` closed-loop
//! client threads each, in three connection modes:
//!
//! * **keep-alive** (headline cases `healthz`, `match_single_pair`,
//!   `query_debug`) — one persistent connection per client, one request
//!   in flight at a time: the steady-state interactive-IDE shape;
//! * **pipelined** (`healthz_pipelined`) — [`PIPELINE_DEPTH`] requests
//!   written back-to-back per batch before reading the responses,
//!   measuring how deeply the event loop amortizes syscalls;
//! * **connection-per-request** (`*_connclose` cases) — the historic
//!   shape, kept so the old-vs-new comparison stays honest.
//!
//! Reports throughput and p50/p95/p99 latency per case and writes the
//! committed `BENCH_serve.json` snapshot.
//!
//! Set `PANDA_BENCH_STATE_DIR=<dir>` to run the server with the durable
//! session store attached and add an `lf_upsert_durable` case (one WAL
//! append + fsync per request) — measuring the durability tax without
//! touching the committed default-mode snapshot. Durable mode also
//! boots a second topology — a primary shipping its WAL to an
//! in-process follower — and drives `lf_upsert_replicated` (the same
//! write path with record shipping live) plus `follower_read_match`
//! (keep-alive `/match` answered by the follower's replica).
//!
//! Run: `cargo run --release -p panda-bench --bin bench_serve`

use panda_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Closed-loop clients per case.
const CLIENTS: usize = 4;
/// Requests per client for connection-per-request cases (connect cost
/// dominates, so fewer suffice for a stable estimate).
const REQUESTS_CONNCLOSE: usize = 150;
/// Requests per client for keep-alive cases.
const REQUESTS_KEEPALIVE: usize = 2000;
/// Requests written back-to-back per pipelined batch.
const PIPELINE_DEPTH: usize = 16;
/// Batches per client for the pipelined case.
const PIPELINE_BATCHES: usize = 125;

/// One-shot request on a fresh connection (`Connection: close`).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    (status, body)
}

/// Incremental response reader over a persistent connection: buffers
/// socket reads and splits out one `Content-Length`-framed response at a
/// time (keep-alive clients cannot rely on EOF framing).
struct RespReader {
    buf: Vec<u8>,
}

impl RespReader {
    fn new() -> RespReader {
        RespReader { buf: Vec::new() }
    }

    /// Read one full response off `stream`; returns its status code.
    fn read_response(&mut self, stream: &mut TcpStream) -> u16 {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((status, consumed)) = split_one(&self.buf) {
                self.buf.drain(..consumed);
                return status;
            }
            let n = stream.read(&mut chunk).expect("recv");
            assert!(n > 0, "server closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// If `buf` starts with one complete response, return `(status, len)`.
fn split_one(buf: &[u8]) -> Option<(u16, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())?;
    let total = head_end + content_length;
    (buf.len() >= total).then_some((status, total))
}

/// A product-matching table pair large enough that session requests do
/// real work (blocking yields a few hundred candidates).
fn demo_csvs() -> (String, String) {
    let brands = [
        "acme", "zenith", "orion", "vertex", "nimbus", "quartz", "ember", "cobalt", "argon",
        "helix", "lumen", "strata", "pivot", "crest", "fable", "garnet",
    ];
    let kinds = ["widget", "gadget", "sprocket", "fixture"];
    let mut left = String::from("id,name,price\n");
    let mut right = String::from("id,name,price\n");
    let mut row = 0usize;
    for brand in &brands {
        for kind in &kinds {
            left.push_str(&format!(
                "{row},{brand} turbo {kind} model {row},{}\n",
                100 + row * 3
            ));
            right.push_str(&format!(
                "{row},{brand} {kind} turbo mk {row},{}\n",
                101 + row * 3
            ));
            row += 1;
        }
    }
    (left, right)
}

#[derive(Clone, Copy)]
enum Mode {
    /// Fresh connection per request (the historic shape).
    ConnClose,
    /// One persistent connection per client, one request in flight.
    KeepAlive,
    /// One persistent connection per client, `PIPELINE_DEPTH` requests
    /// written before the responses are read back.
    Pipelined,
}

struct CaseResult {
    name: &'static str,
    requests: usize,
    elapsed_s: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

impl CaseResult {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed_s
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Run one request class closed-loop and collect latencies. Pipelined
/// latencies are whole-batch round trips divided by the depth (per-
/// request cost, not per-request wait).
fn run_case(
    name: &'static str,
    addr: SocketAddr,
    method: &'static str,
    path: String,
    body: String,
    mode: Mode,
) -> CaseResult {
    // Warm-up outside the measurement.
    let (status, resp) = request(addr, method, &path, &body);
    assert_eq!(status, 200, "{name}: {resp}");

    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let path = path.clone();
        let body = body.clone();
        handles.push(std::thread::spawn(move || match mode {
            Mode::ConnClose => {
                let mut latencies_ns = Vec::with_capacity(REQUESTS_CONNCLOSE);
                for _ in 0..REQUESTS_CONNCLOSE {
                    let t = Instant::now();
                    let (status, _) = request(addr, method, &path, &body);
                    latencies_ns.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "{name}: non-200 under load");
                }
                latencies_ns
            }
            Mode::KeepAlive => {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut reader = RespReader::new();
                let wire = format!(
                    "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                let mut latencies_ns = Vec::with_capacity(REQUESTS_KEEPALIVE);
                for _ in 0..REQUESTS_KEEPALIVE {
                    let t = Instant::now();
                    stream.write_all(wire.as_bytes()).expect("send");
                    let status = reader.read_response(&mut stream);
                    latencies_ns.push(t.elapsed().as_nanos() as u64);
                    assert_eq!(status, 200, "{name}: non-200 under load");
                }
                latencies_ns
            }
            Mode::Pipelined => {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut reader = RespReader::new();
                let one = format!(
                    "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                let batch = one.repeat(PIPELINE_DEPTH);
                let mut latencies_ns = Vec::with_capacity(PIPELINE_BATCHES * PIPELINE_DEPTH);
                for _ in 0..PIPELINE_BATCHES {
                    let t = Instant::now();
                    stream.write_all(batch.as_bytes()).expect("send");
                    for _ in 0..PIPELINE_DEPTH {
                        let status = reader.read_response(&mut stream);
                        assert_eq!(status, 200, "{name}: non-200 under load");
                    }
                    let per_request = t.elapsed().as_nanos() as u64 / PIPELINE_DEPTH as u64;
                    latencies_ns.extend(std::iter::repeat_n(per_request, PIPELINE_DEPTH));
                }
                latencies_ns
            }
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed_s = started.elapsed().as_secs_f64();
    all.sort_unstable();
    CaseResult {
        name,
        requests: all.len(),
        elapsed_s,
        p50_us: percentile(&all, 0.50),
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
    }
}

fn main() {
    let workers = panda_exec::worker_count();
    let state_dir = std::env::var_os("PANDA_BENCH_STATE_DIR").map(std::path::PathBuf::from);
    let handle = Server::start(ServerConfig {
        workers,
        state_dir: state_dir.clone(),
        ..Default::default()
    })
    .expect("start server");
    let addr = handle.addr();

    // One session for the whole run: create, add an LF incrementally, fit.
    let (left_csv, right_csv) = demo_csvs();
    let create = format!(
        r#"{{"left_csv":{},"right_csv":{},"config":{{"auto_lfs":false}}}}"#,
        serde_json::to_string(&left_csv).unwrap(),
        serde_json::to_string(&right_csv).unwrap()
    );
    let (status, body) = request(addr, "POST", "/sessions", &create);
    assert_eq!(status, 200, "create session: {body}");
    let lf = r#"{"name":"name_overlap","kind":"similarity","attr":"name","upper":0.5,"lower":0.1}"#;
    let (status, body) = request(addr, "POST", "/sessions/1/lfs", lf);
    assert_eq!(status, 200, "add lf: {body}");
    let (status, body) = request(addr, "POST", "/sessions/1/fit", "");
    assert_eq!(status, 200, "fit: {body}");

    let match_body = r#"{"session":1,"pairs":[[3,3]]}"#;
    let query_body = r#"{"lf":"name_overlap","query":"VotedMatch","limit":10}"#;
    let mut cases = vec![
        // Headline cases ride persistent connections — the shape the
        // interactive IDE loop (and any sane client library) uses.
        run_case(
            "healthz",
            addr,
            "GET",
            "/healthz".into(),
            String::new(),
            Mode::KeepAlive,
        ),
        run_case(
            "match_single_pair",
            addr,
            "POST",
            "/match".into(),
            match_body.into(),
            Mode::KeepAlive,
        ),
        run_case(
            "query_debug",
            addr,
            "POST",
            "/sessions/1/query".into(),
            query_body.into(),
            Mode::KeepAlive,
        ),
        run_case(
            "healthz_pipelined",
            addr,
            "GET",
            "/healthz".into(),
            String::new(),
            Mode::Pipelined,
        ),
        // Connection-per-request variants keep the old numbers comparable.
        run_case(
            "healthz_connclose",
            addr,
            "GET",
            "/healthz".into(),
            String::new(),
            Mode::ConnClose,
        ),
        run_case(
            "match_single_pair_connclose",
            addr,
            "POST",
            "/match".into(),
            match_body.into(),
            Mode::ConnClose,
        ),
    ];
    if state_dir.is_some() {
        // Re-upserting the same LF recomputes one matrix column and WAL-
        // logs (append + fsync) every request: the durability hot path.
        cases.push(run_case(
            "lf_upsert_durable",
            addr,
            "POST",
            "/sessions/1/lfs".into(),
            lf.to_string(),
            Mode::KeepAlive,
        ));

        // Replication topology: a second primary (its own state dir and
        // replication listener) with an in-process follower subscribed.
        // `lf_upsert_replicated` is the durable write path with record
        // shipping live — its gap to `lf_upsert_durable` is the
        // replication tax bench_gate holds a line on — and
        // `follower_read_match` is read throughput off the replica.
        let repl_dir =
            std::env::temp_dir().join(format!("panda-bench-repl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&repl_dir);
        let primary = Server::start(ServerConfig {
            workers,
            state_dir: Some(repl_dir.clone()),
            repl_addr: Some("127.0.0.1:0".into()),
            ..Default::default()
        })
        .expect("start replicated primary");
        let paddr = primary.addr();
        let follower = Server::start(ServerConfig {
            workers,
            follow: Some(primary.repl_addr().expect("repl addr").to_string()),
            ..Default::default()
        })
        .expect("start follower");
        let faddr = follower.addr();

        let (status, body) = request(paddr, "POST", "/sessions", &create);
        assert_eq!(status, 200, "create replicated session: {body}");
        let (status, body) = request(paddr, "POST", "/sessions/1/lfs", lf);
        assert_eq!(status, 200, "add lf (replicated): {body}");
        let (status, body) = request(paddr, "POST", "/sessions/1/fit", "");
        assert_eq!(status, 200, "fit (replicated): {body}");
        // The follower must hold the full session (seq 3) before its
        // read case runs.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let (status, body) = request(faddr, "GET", "/sessions", "");
            if status == 200 && body.contains("\"wal_seq\":3") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "follower never caught up: {body}"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        cases.push(run_case(
            "lf_upsert_replicated",
            paddr,
            "POST",
            "/sessions/1/lfs".into(),
            lf.to_string(),
            Mode::KeepAlive,
        ));
        cases.push(run_case(
            "follower_read_match",
            faddr,
            "POST",
            "/match".into(),
            match_body.into(),
            Mode::KeepAlive,
        ));

        primary.shutdown();
        primary.join();
        follower.shutdown();
        follower.join();
        let _ = std::fs::remove_dir_all(&repl_dir);
    }

    println!(
        "bench_serve: {workers} workers, {CLIENTS} closed-loop clients \
         ({REQUESTS_KEEPALIVE} keep-alive / {REQUESTS_CONNCLOSE} conn-close requests each, \
         pipeline depth {PIPELINE_DEPTH})"
    );
    let mut case_json = Vec::new();
    for c in &cases {
        println!(
            "  {:<28} {:>7.0} req/s   p50 {:>8.1} µs   p95 {:>8.1} µs   p99 {:>8.1} µs",
            c.name,
            c.throughput(),
            c.p50_us,
            c.p95_us,
            c.p99_us
        );
        case_json.push(format!(
            concat!(
                "    {{\"case\": \"{}\", \"requests\": {}, \"throughput_rps\": {:.1}, ",
                "\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}"
            ),
            c.name,
            c.requests,
            c.throughput(),
            c.p50_us,
            c.p95_us,
            c.p99_us
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_closed_loop\",\n  \"config\": {{\"workers\": {workers}, \
         \"clients\": {CLIENTS}, \"requests_per_client_keepalive\": {REQUESTS_KEEPALIVE}, \
         \"requests_per_client_connclose\": {REQUESTS_CONNCLOSE}, \
         \"pipeline_depth\": {PIPELINE_DEPTH}}},\n  \
         \"cases\": [\n{}\n  ]\n}}\n",
        case_json.join(",\n")
    );
    if state_dir.is_none() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(path, &json).expect("write BENCH_serve.json");
        println!("wrote {path}");
    } else {
        println!("durable mode (PANDA_BENCH_STATE_DIR set): BENCH_serve.json left untouched");
    }

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
}
