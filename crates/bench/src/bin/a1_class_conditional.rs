//! **A1 — ablation: class-conditional accuracies** (§2.1 feature 3, first
//! property). The paper argues a single accuracy parameter is
//! insufficient under EM's class imbalance. We isolate exactly that
//! mechanism with planted data: LFs with *asymmetric* class-conditional
//! accuracies, and a match prior swept from balanced (0.5) down to 1:200.
//! At each prior we fit the single-accuracy (Snorkel) model and the
//! class-conditional (Panda) model on identical vote matrices.
//!
//! Run: `cargo run --release -p panda-bench --bin a1_class_conditional`

use panda_bench::{mean, write_csv};
use panda_eval::TextTable;
use panda_model::testutil::{f1, plant, PlantedLf};
use panda_model::{LabelModel, PandaModel, SnorkelModel};

fn main() {
    panda_bench::init_obs();
    // LFs with *asymmetric class-conditional accuracies* (match-precise
    // vs unmatch-precise) but uniform propensities, so the sweep isolates
    // exactly the paper's first property: one accuracy parameter cannot
    // represent an LF that is 92% right on matches but only 55% right on
    // non-matches, and the mis-weighting worsens as the class prior
    // shifts the single estimate toward the majority class's behaviour.
    let specs = [
        PlantedLf {
            propensity_m: 0.85,
            propensity_u: 0.85,
            acc_m: 0.92,
            acc_u: 0.55,
        },
        PlantedLf {
            propensity_m: 0.85,
            propensity_u: 0.85,
            acc_m: 0.90,
            acc_u: 0.60,
        },
        PlantedLf {
            propensity_m: 0.85,
            propensity_u: 0.85,
            acc_m: 0.55,
            acc_u: 0.90,
        },
        PlantedLf {
            propensity_m: 0.85,
            propensity_u: 0.85,
            acc_m: 0.60,
            acc_u: 0.93,
        },
        PlantedLf {
            propensity_m: 0.85,
            propensity_u: 0.85,
            acc_m: 0.88,
            acc_u: 0.50,
        },
    ];

    let mut table = TextTable::new(&[
        "match_prior",
        "imbalance",
        "snorkel_f1",
        "panda_f1",
        "delta",
    ]);
    println!("A1: class-conditional accuracies vs class imbalance (planted LFs, 8000 pairs)\n");
    for &pi in &[0.5, 0.2, 0.1, 0.05, 0.02, 0.01] {
        let mut sn = Vec::new();
        let mut pd = Vec::new();
        for seed in [101u64, 102, 103] {
            let p = plant(8000, pi, &specs, seed);
            // Lift the learned-prior cap (an EM-regime default) so the
            // sweep isolates the accuracy parametrization, including at
            // the balanced control point.
            sn.push(f1(
                &SnorkelModel::new()
                    .with_max_prior(0.6)
                    .fit_predict(&p.matrix, None),
                &p.truth,
            ));
            pd.push(f1(
                &PandaModel::new()
                    .with_max_prior(0.6)
                    .fit_predict(&p.matrix, None),
                &p.truth,
            ));
        }
        let (s, d) = (mean(&sn), mean(&pd));
        table.row(&[
            format!("{pi:.2}"),
            format!("1:{:.0}", (1.0 - pi) / pi),
            format!("{s:.3}"),
            format!("{d:.3}"),
            format!("{:+.3}", d - s),
        ]);
    }
    println!("{}", table.render());
    println!("The shape to check: the class-conditional model dominates at every");
    println!("prior (the LFs are genuinely asymmetric), both models degrade as");
    println!("imbalance grows, and the single-accuracy model collapses first —");
    println!("the paper's first property.");
    write_csv("a1_class_conditional", &table);
}
