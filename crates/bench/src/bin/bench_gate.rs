//! **Bench-regression gate** — the CI half of the committed
//! `BENCH_autolf.json` / `BENCH_emfit.json` / `BENCH_serve.json`
//! baselines (see `.github/workflows/ci.yml`).
//!
//! Re-runs the two `p2_autolf_grid` workloads with telemetry enabled and
//! compares the `autolf.generate` span mean against the committed
//! `after.ns_per_iter` medians. A case fails when its mean exceeds
//! `baseline × 1.25 × PANDA_BENCH_GATE_SLACK` (slack defaults to 1.0;
//! CI sets it higher to absorb shared-runner noise). It then replays the
//! `p3_em_fit` planted workload through `PandaModel`/`SnorkelModel`
//! `fit_predict` and holds each against its `em_fit/*` line the same
//! way. Finally it boots an
//! in-process `panda-serve` and drives a short keep-alive `/healthz`
//! burst: measured throughput must stay above the committed `healthz`
//! number divided by the same limit factor (throughput gates divide
//! where latency gates multiply). A replication-overhead gate then
//! drives the durable `lf_upsert` write path twice — once solo, once
//! with a follower subscribed over the WAL-shipping channel — and
//! requires the replicated run to hold `REPL_OVERHEAD_LIMIT` of the
//! solo throughput. Exits nonzero on any failure and
//! writes one `bench_gate_<case>.metrics.json` snapshot per case to
//! `target/experiments/` for artifact upload.
//!
//! Run: `cargo run --release -p panda-bench --bin bench_gate`

use panda_autolf::{generate_auto_lfs, AutoLfConfig};
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_embed::{Blocker, EmbeddingLshBlocker};
use panda_table::{CandidateSet, TablePair};
use serde::Value;
use std::hint::black_box;
use std::io::{Read, Write};
use std::process::ExitCode;

/// Timed iterations per case (plus one untimed warm-up).
const ITERS: u32 = 3;
/// Allowed regression before slack: mean may be up to 25% above baseline.
const THRESHOLD: f64 = 1.25;
/// The full observability plane (labelled RED metrics + journal ring)
/// may cost at most this factor of `/healthz` throughput versus the
/// same burst with telemetry off (× slack).
const OBS_OVERHEAD_LIMIT: f64 = 1.25;
/// Shipping every acknowledged WAL record to a live follower may cost
/// at most this factor of durable `lf_upsert` throughput versus the
/// same burst with no follower attached (× slack). The primary-side
/// cost is an in-memory enqueue to the hub thread, but the in-process
/// follower *replays* every shipped record (a full LF-column recompute)
/// on the same cores — so this line bounds the combined primary+replica
/// cost of the topology, not just the enqueue. On a single-core box the
/// two nodes contend fully, so the line sits at 2x; a regression to
/// synchronous shipping or double-fsync still lands well past it.
const REPL_OVERHEAD_LIMIT: f64 = 2.0;

struct Case {
    /// Key in `BENCH_autolf.json` (`cases[].case` is `"<id>/..."`).
    id: &'static str,
    tables: TablePair,
    cands: CandidateSet,
    cfg: AutoLfConfig,
}

/// The same two workloads as `benches/p2_autolf_grid.rs`.
fn cases() -> Vec<Case> {
    let abt = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(77).with_entities(150),
    );
    let abt_cands = EmbeddingLshBlocker::new(7).candidates(&abt);
    let wa = generate(
        DatasetFamily::WalmartAmazon,
        &GeneratorConfig::new(55).with_entities(150),
    );
    let wa_cands = EmbeddingLshBlocker::new(55).candidates(&wa);
    vec![
        Case {
            id: "abt_buy",
            tables: abt,
            cands: abt_cands,
            cfg: AutoLfConfig::default(),
        },
        Case {
            id: "walmart_amazon",
            tables: wa,
            cands: wa_cands,
            cfg: AutoLfConfig {
                attribute_pairs: vec![
                    ("title".into(), "name".into()),
                    ("modelno".into(), "model".into()),
                ],
                ..AutoLfConfig::default()
            },
        },
    ]
}

/// `case id → after.ns_per_iter` from the committed baseline file.
fn load_baselines() -> Result<Vec<(String, f64)>, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_autolf.json");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::parse_value(&text).map_err(|e| format!("bad JSON in {path}: {e}"))?;
    let Some(Value::Array(cases)) = doc.get_field("cases") else {
        return Err(format!("{path}: missing \"cases\" array"));
    };
    let mut out = Vec::new();
    for c in cases {
        let Some(Value::Str(name)) = c.get_field("case") else {
            return Err(format!("{path}: case entry without \"case\" string"));
        };
        let ns = c
            .get_field("after")
            .and_then(|a| a.get_field("ns_per_iter"))
            .and_then(|v| match v {
                Value::Int(n) => Some(*n as f64),
                Value::UInt(n) => Some(*n as f64),
                Value::Float(n) => Some(*n),
                _ => None,
            })
            .ok_or_else(|| format!("{path}: {name}: missing after.ns_per_iter"))?;
        // "abt_buy/150e_2616cands" → "abt_buy".
        let id = name.split('/').next().unwrap_or(name).to_string();
        out.push((id, ns));
    }
    Ok(out)
}

/// `em_fit/<model> → after.ns_per_iter` from `BENCH_emfit.json` (the
/// `em_step/*` kernel-comparison case has no gate — it documents the
/// packed-vote speedup, not a line to hold).
fn load_emfit_baselines() -> Result<Vec<(String, f64)>, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_emfit.json");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::parse_value(&text).map_err(|e| format!("bad JSON in {path}: {e}"))?;
    let Some(Value::Array(cases)) = doc.get_field("cases") else {
        return Err(format!("{path}: missing \"cases\" array"));
    };
    let mut out = Vec::new();
    for c in cases {
        let Some(Value::Str(name)) = c.get_field("case") else {
            return Err(format!("{path}: case entry without \"case\" string"));
        };
        if !name.starts_with("em_fit/") {
            continue;
        }
        let ns = c
            .get_field("after")
            .and_then(|a| a.get_field("ns_per_iter"))
            .and_then(|v| match v {
                Value::Int(n) => Some(*n as f64),
                Value::UInt(n) => Some(*n as f64),
                Value::Float(n) => Some(*n),
                _ => None,
            })
            .ok_or_else(|| format!("{path}: {name}: missing after.ns_per_iter"))?;
        // "em_fit/panda/20k_pairs_10lfs" → "panda".
        let id = name
            .split('/')
            .nth(1)
            .ok_or_else(|| format!("{path}: {name}: expected em_fit/<model>/<size>"))?
            .to_string();
        out.push((id, ns));
    }
    if out.is_empty() {
        return Err(format!("{path}: no em_fit/ cases"));
    }
    Ok(out)
}

/// The same planted workload as `benches/p3_em_fit.rs`.
fn emfit_workload() -> panda_model::testutil::Planted {
    use panda_model::testutil::{plant, PlantedLf};
    let lfs = [
        PlantedLf::symmetric(0.9, 0.85),
        PlantedLf::symmetric(0.8, 0.9),
        PlantedLf::symmetric(0.7, 0.75),
        PlantedLf::symmetric(0.5, 0.8),
        PlantedLf::symmetric(0.9, 0.7),
        PlantedLf::symmetric(0.3, 0.95),
        PlantedLf::symmetric(0.6, 0.65),
        PlantedLf::symmetric(0.8, 0.8),
        PlantedLf::symmetric(0.4, 0.7),
        PlantedLf::symmetric(0.7, 0.9),
    ];
    plant(20_000, 0.15, &lfs, 4242)
}

/// Committed keep-alive `/healthz` throughput from `BENCH_serve.json`.
fn load_serve_baseline() -> Result<f64, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::parse_value(&text).map_err(|e| format!("bad JSON in {path}: {e}"))?;
    let Some(Value::Array(cases)) = doc.get_field("cases") else {
        return Err(format!("{path}: missing \"cases\" array"));
    };
    for c in cases {
        if c.get_field("case") != Some(&Value::Str("healthz".into())) {
            continue;
        }
        return c
            .get_field("throughput_rps")
            .and_then(|v| match v {
                Value::Int(n) => Some(*n as f64),
                Value::UInt(n) => Some(*n as f64),
                Value::Float(n) => Some(*n),
                _ => None,
            })
            .ok_or_else(|| format!("{path}: healthz: missing throughput_rps"));
    }
    Err(format!("{path}: no \"healthz\" case"))
}

/// Measure keep-alive `/healthz` throughput against an in-process server.
/// Client count matches `bench_serve` — closed-loop throughput depends on
/// the offered concurrency, so the gate must replay the baseline's shape.
/// `obs_on` selects the full observability plane (labelled per-request
/// metrics + journal ring) or none — the pair of runs feeds the
/// overhead gate.
fn measure_serve_healthz_rps(obs_on: bool) -> Result<f64, String> {
    const GATE_CLIENTS: usize = 4;
    const GATE_REQUESTS: usize = 3000;
    panda_obs::reset();
    panda_obs::set_enabled(obs_on);
    panda_obs::set_journal_enabled(obs_on);
    let handle = panda_serve::Server::start(panda_serve::ServerConfig {
        workers: panda_exec::worker_count(),
        ..Default::default()
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = handle.addr();
    let started = std::time::Instant::now();
    let clients: Vec<_> = (0..GATE_CLIENTS)
        .map(|_| {
            std::thread::spawn(move || -> Result<(), String> {
                let mut stream =
                    std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let wire = b"GET /healthz HTTP/1.1\r\nHost: gate\r\nContent-Length: 0\r\n\r\n";
                let mut buf = Vec::new();
                let mut chunk = [0u8; 4096];
                for _ in 0..GATE_REQUESTS {
                    stream.write_all(wire).map_err(|e| format!("send: {e}"))?;
                    // One Content-Length-framed 200 per request.
                    loop {
                        if let Some(end) = full_response_len(&buf) {
                            if !buf.starts_with(b"HTTP/1.1 200") {
                                return Err(format!(
                                    "non-200: {:?}",
                                    String::from_utf8_lossy(&buf[..end.min(64)])
                                ));
                            }
                            buf.drain(..end);
                            break;
                        }
                        let n = stream.read(&mut chunk).map_err(|e| format!("recv: {e}"))?;
                        if n == 0 {
                            return Err("server closed mid-burst".into());
                        }
                        buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Ok(())
            })
        })
        .collect();
    let mut err = None;
    for c in clients {
        if let Err(e) = c.join().expect("gate client") {
            err = Some(e);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    handle.shutdown();
    handle.join();
    match err {
        Some(e) => Err(e),
        None => Ok((GATE_CLIENTS * GATE_REQUESTS) as f64 / elapsed),
    }
}

/// One-shot request on a fresh connection (topology setup, not timed).
fn http_once(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: gate\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    Ok((status, body))
}

/// A small table pair for the replication gate — big enough that the
/// LF upsert recomputes a real matrix column, small enough that the
/// fsync (not the similarity kernel) stays the dominant cost.
fn repl_gate_csvs() -> (String, String) {
    let brands = [
        "acme", "zenith", "orion", "vertex", "nimbus", "quartz", "ember", "cobalt",
    ];
    let mut left = String::from("id,name,price\n");
    let mut right = String::from("id,name,price\n");
    for (row, brand) in brands.iter().enumerate() {
        left.push_str(&format!(
            "{row},{brand} turbo widget model {row},{}\n",
            100 + row * 3
        ));
        right.push_str(&format!(
            "{row},{brand} widget turbo mk {row},{}\n",
            101 + row * 3
        ));
    }
    (left, right)
}

/// Measure keep-alive `POST /sessions/1/lfs` throughput against a
/// durable in-process primary — optionally with a follower subscribed,
/// so every acknowledged WAL record is also shipped over the
/// replication channel. The solo/replicated pair feeds the
/// replication-overhead gate.
fn measure_lf_upsert_rps(replicated: bool) -> Result<f64, String> {
    const GATE_CLIENTS: usize = 2;
    const GATE_REQUESTS: usize = 250;
    let dir = std::env::temp_dir().join(format!(
        "panda-gate-repl-{}-{}",
        std::process::id(),
        if replicated { "on" } else { "off" }
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let primary = panda_serve::Server::start(panda_serve::ServerConfig {
        workers: panda_exec::worker_count(),
        state_dir: Some(dir.clone()),
        repl_addr: replicated.then(|| "127.0.0.1:0".into()),
        ..Default::default()
    })
    .map_err(|e| format!("cannot start primary: {e}"))?;
    let addr = primary.addr();
    let follower = if replicated {
        let repl = primary.repl_addr().ok_or("primary has no repl addr")?;
        Some(
            panda_serve::Server::start(panda_serve::ServerConfig {
                workers: panda_exec::worker_count(),
                follow: Some(repl.to_string()),
                ..Default::default()
            })
            .map_err(|e| format!("cannot start follower: {e}"))?,
        )
    } else {
        None
    };

    let (left, right) = repl_gate_csvs();
    let create = format!(
        r#"{{"left_csv":{},"right_csv":{},"config":{{"auto_lfs":false}}}}"#,
        serde_json::to_string(&left).unwrap(),
        serde_json::to_string(&right).unwrap()
    );
    let lf = r#"{"name":"name_overlap","kind":"similarity","attr":"name","upper":0.5,"lower":0.1}"#;
    for (path, body) in [("/sessions", create.as_str()), ("/sessions/1/lfs", lf)] {
        let (status, resp) = http_once(addr, "POST", path, body)?;
        if status != 200 {
            return Err(format!("POST {path}: {status} {resp}"));
        }
    }
    if let Some(f) = &follower {
        // Shipping must be live (subscription up, session synced) before
        // the burst, or the "replicated" run measures an unreplicated
        // prefix.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let (status, body) = http_once(f.addr(), "GET", "/sessions", "")?;
            if status == 200 && body.contains("\"wal_seq\":2") {
                break;
            }
            if std::time::Instant::now() >= deadline {
                return Err(format!("follower never caught up: {body}"));
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    let started = std::time::Instant::now();
    let clients: Vec<_> = (0..GATE_CLIENTS)
        .map(|_| {
            let lf = lf.to_string();
            std::thread::spawn(move || -> Result<(), String> {
                let mut stream =
                    std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let wire = format!(
                    "POST /sessions/1/lfs HTTP/1.1\r\nHost: gate\r\nContent-Length: {}\r\n\r\n{lf}",
                    lf.len()
                );
                let mut buf = Vec::new();
                let mut chunk = [0u8; 4096];
                for _ in 0..GATE_REQUESTS {
                    stream
                        .write_all(wire.as_bytes())
                        .map_err(|e| format!("send: {e}"))?;
                    loop {
                        if let Some(end) = full_response_len(&buf) {
                            if !buf.starts_with(b"HTTP/1.1 200") {
                                return Err(format!(
                                    "non-200: {:?}",
                                    String::from_utf8_lossy(&buf[..end.min(64)])
                                ));
                            }
                            buf.drain(..end);
                            break;
                        }
                        let n = stream.read(&mut chunk).map_err(|e| format!("recv: {e}"))?;
                        if n == 0 {
                            return Err("server closed mid-burst".into());
                        }
                        buf.extend_from_slice(&chunk[..n]);
                    }
                }
                Ok(())
            })
        })
        .collect();
    let mut err = None;
    for c in clients {
        if let Err(e) = c.join().expect("gate client") {
            err = Some(e);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    primary.shutdown();
    primary.join();
    if let Some(f) = follower {
        f.shutdown();
        f.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
    match err {
        Some(e) => Err(e),
        None => Ok((GATE_CLIENTS * GATE_REQUESTS) as f64 / elapsed),
    }
}

/// If `buf` starts with one complete `Content-Length`-framed response,
/// return its total length.
fn full_response_len(buf: &[u8]) -> Option<usize> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())?;
    let total = head_end + content_length;
    (buf.len() >= total).then_some(total)
}

fn gate_slack() -> f64 {
    match std::env::var("PANDA_BENCH_GATE_SLACK") {
        Ok(s) => s
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|v| *v >= 1.0)
            .unwrap_or_else(|| {
                eprintln!("warning: ignoring invalid PANDA_BENCH_GATE_SLACK={s:?} (want ≥ 1.0)");
                1.0
            }),
        Err(_) => 1.0,
    }
}

fn main() -> ExitCode {
    let baselines = match load_baselines() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let slack = gate_slack();
    let limit_factor = THRESHOLD * slack;
    println!("bench_gate: threshold {THRESHOLD}x, slack {slack}x (PANDA_BENCH_GATE_SLACK)");

    let mut failed = false;
    for case in cases() {
        let Some((_, baseline_ns)) = baselines.iter().find(|(id, _)| id == case.id) else {
            eprintln!("bench_gate: no baseline for case {:?}", case.id);
            failed = true;
            continue;
        };
        // Warm up once (page cache, lazy corpus stats) outside telemetry,
        // then reset so the measured span aggregate covers exactly ITERS
        // calls. init_obs() resets the process-global registry between
        // cases — each snapshot is per-case.
        black_box(generate_auto_lfs(&case.tables, &case.cands, &case.cfg).len());
        panda_bench::init_obs();
        for _ in 0..ITERS {
            black_box(generate_auto_lfs(&case.tables, &case.cands, &case.cfg).len());
        }
        let snap = panda_obs::snapshot();
        let Some(stats) = snap.spans.get("autolf.generate") else {
            eprintln!("bench_gate: {}: no autolf.generate span recorded", case.id);
            failed = true;
            continue;
        };
        let mean_ns = stats.total_ns as f64 / stats.count as f64;
        let limit_ns = baseline_ns * limit_factor;
        let ratio = mean_ns / baseline_ns;
        let verdict = if mean_ns <= limit_ns { "PASS" } else { "FAIL" };
        println!(
            "  {verdict} {:<16} mean {:>12.0} ns/iter  baseline {:>12.0}  ratio {:.2} (limit {:.2})",
            case.id, mean_ns, baseline_ns, ratio, limit_factor
        );
        if mean_ns > limit_ns {
            failed = true;
        }
        let mpath =
            panda_bench::experiments_dir().join(format!("bench_gate_{}.metrics.json", case.id));
        if let Err(e) = std::fs::write(&mpath, snap.to_json()) {
            eprintln!("bench_gate: cannot write {}: {e}", mpath.display());
            failed = true;
        } else {
            println!("       metrics → {}", mpath.display());
        }
    }

    // EM-fit gate: label-model fit time on the planted matrix must hold
    // the BENCH_emfit.json line.
    match load_emfit_baselines() {
        Ok(emfit_baselines) => {
            use panda_model::{LabelModel, PandaModel, SnorkelModel};
            let planted = emfit_workload();
            let mut report = String::from("{\n  \"cases\": [\n");
            for (idx, (id, baseline_ns)) in emfit_baselines.iter().enumerate() {
                let fit: fn(&panda_lf::LabelMatrix) -> Vec<f64> = match id.as_str() {
                    "panda" => |m| PandaModel::new().fit_predict(m, None),
                    "snorkel" => |m| SnorkelModel::new().fit_predict(m, None),
                    other => {
                        eprintln!("bench_gate: unknown em_fit model {other:?}");
                        failed = true;
                        continue;
                    }
                };
                black_box(fit(&planted.matrix));
                let started = std::time::Instant::now();
                for _ in 0..ITERS {
                    black_box(fit(&planted.matrix));
                }
                let mean_ns = started.elapsed().as_nanos() as f64 / f64::from(ITERS);
                let limit_ns = baseline_ns * limit_factor;
                let ratio = mean_ns / baseline_ns;
                let verdict = if mean_ns <= limit_ns { "PASS" } else { "FAIL" };
                println!(
                    "  {verdict} em_fit/{:<9} mean {:>12.0} ns/iter  baseline {:>12.0}  ratio {:.2} (limit {:.2})",
                    id, mean_ns, baseline_ns, ratio, limit_factor
                );
                if mean_ns > limit_ns {
                    failed = true;
                }
                if idx > 0 {
                    report.push_str(",\n");
                }
                report.push_str(&format!(
                    "    {{ \"case\": \"em_fit/{id}\", \"mean_ns\": {mean_ns:.0}, \"baseline_ns\": {baseline_ns:.0}, \"verdict\": \"{verdict}\" }}"
                ));
            }
            report.push_str("\n  ]\n}\n");
            let mpath = panda_bench::experiments_dir().join("bench_gate_emfit.metrics.json");
            if let Err(e) = std::fs::write(&mpath, report) {
                eprintln!("bench_gate: cannot write {}: {e}", mpath.display());
                failed = true;
            } else {
                println!("       metrics → {}", mpath.display());
            }
        }
        Err(e) => {
            eprintln!("bench_gate: em_fit gate: {e}");
            failed = true;
        }
    }

    // Serve gate: keep-alive /healthz throughput must hold the line.
    // Measured with the full observability plane live — that is how
    // `panda serve` actually runs.
    let rps_on = measure_serve_healthz_rps(true);
    match (load_serve_baseline(), &rps_on) {
        (Ok(baseline_rps), Ok(measured_rps)) => {
            let floor_rps = baseline_rps / limit_factor;
            let verdict = if *measured_rps >= floor_rps {
                "PASS"
            } else {
                failed = true;
                "FAIL"
            };
            println!(
                "  {verdict} serve_healthz    {:>9.0} req/s      baseline {:>9.0}  floor {:>9.0}",
                measured_rps, baseline_rps, floor_rps
            );
        }
        (Err(e), _) => {
            eprintln!("bench_gate: serve gate: {e}");
            failed = true;
        }
        (_, Err(e)) => {
            eprintln!("bench_gate: serve gate: {e}");
            failed = true;
        }
    }

    // Observability-overhead gate: the plane (labelled RED counters +
    // latency histograms + journal events per request) must not cost
    // more than OBS_OVERHEAD_LIMIT of /healthz throughput.
    match (measure_serve_healthz_rps(false), &rps_on) {
        (Ok(rps_off), Ok(rps_on)) => {
            let obs_limit = OBS_OVERHEAD_LIMIT * slack;
            let floor_rps = rps_off / obs_limit;
            let ratio = rps_off / rps_on;
            let verdict = if *rps_on >= floor_rps {
                "PASS"
            } else {
                failed = true;
                "FAIL"
            };
            println!(
                "  {verdict} obs_overhead     {:>9.0} req/s on   obs-off {:>9.0}  cost {:.2}x (limit {:.2})",
                rps_on, rps_off, ratio, obs_limit
            );
        }
        (Err(e), _) => {
            eprintln!("bench_gate: obs overhead gate: {e}");
            failed = true;
        }
        (_, Err(e)) => {
            eprintln!("bench_gate: obs overhead gate: {e}");
            failed = true;
        }
    }

    // Replication-overhead gate: the durable lf_upsert write path with a
    // follower subscribed (one shipped frame per acknowledged record)
    // must hold REPL_OVERHEAD_LIMIT of the solo durable throughput.
    match (measure_lf_upsert_rps(false), measure_lf_upsert_rps(true)) {
        (Ok(rps_solo), Ok(rps_repl)) => {
            let repl_limit = REPL_OVERHEAD_LIMIT * slack;
            let floor_rps = rps_solo / repl_limit;
            let ratio = rps_solo / rps_repl;
            let verdict = if rps_repl >= floor_rps {
                "PASS"
            } else {
                failed = true;
                "FAIL"
            };
            println!(
                "  {verdict} repl_overhead    {:>9.0} req/s repl  solo {:>9.0}  cost {:.2}x (limit {:.2})",
                rps_repl, rps_solo, ratio, repl_limit
            );
        }
        (Err(e), _) => {
            eprintln!("bench_gate: repl overhead gate: {e}");
            failed = true;
        }
        (_, Err(e)) => {
            eprintln!("bench_gate: repl overhead gate: {e}");
            failed = true;
        }
    }

    if failed {
        eprintln!("bench_gate: FAILED — a case regressed past its committed baseline");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: ok");
        ExitCode::SUCCESS
    }
}
