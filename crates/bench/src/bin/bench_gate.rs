//! **Bench-regression gate** — the CI half of the committed
//! `BENCH_autolf.json` baseline (see `.github/workflows/ci.yml`).
//!
//! Re-runs the two `p2_autolf_grid` workloads with telemetry enabled and
//! compares the `autolf.generate` span mean against the committed
//! `after.ns_per_iter` medians. A case fails when its mean exceeds
//! `baseline × 1.25 × PANDA_BENCH_GATE_SLACK` (slack defaults to 1.0;
//! CI sets it higher to absorb shared-runner noise). Exits nonzero on
//! any failure and writes one `bench_gate_<case>.metrics.json` snapshot
//! per case to `target/experiments/` for artifact upload.
//!
//! Run: `cargo run --release -p panda-bench --bin bench_gate`

use panda_autolf::{generate_auto_lfs, AutoLfConfig};
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_embed::{Blocker, EmbeddingLshBlocker};
use panda_table::{CandidateSet, TablePair};
use serde::Value;
use std::hint::black_box;
use std::process::ExitCode;

/// Timed iterations per case (plus one untimed warm-up).
const ITERS: u32 = 3;
/// Allowed regression before slack: mean may be up to 25% above baseline.
const THRESHOLD: f64 = 1.25;

struct Case {
    /// Key in `BENCH_autolf.json` (`cases[].case` is `"<id>/..."`).
    id: &'static str,
    tables: TablePair,
    cands: CandidateSet,
    cfg: AutoLfConfig,
}

/// The same two workloads as `benches/p2_autolf_grid.rs`.
fn cases() -> Vec<Case> {
    let abt = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(77).with_entities(150),
    );
    let abt_cands = EmbeddingLshBlocker::new(7).candidates(&abt);
    let wa = generate(
        DatasetFamily::WalmartAmazon,
        &GeneratorConfig::new(55).with_entities(150),
    );
    let wa_cands = EmbeddingLshBlocker::new(55).candidates(&wa);
    vec![
        Case {
            id: "abt_buy",
            tables: abt,
            cands: abt_cands,
            cfg: AutoLfConfig::default(),
        },
        Case {
            id: "walmart_amazon",
            tables: wa,
            cands: wa_cands,
            cfg: AutoLfConfig {
                attribute_pairs: vec![
                    ("title".into(), "name".into()),
                    ("modelno".into(), "model".into()),
                ],
                ..AutoLfConfig::default()
            },
        },
    ]
}

/// `case id → after.ns_per_iter` from the committed baseline file.
fn load_baselines() -> Result<Vec<(String, f64)>, String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_autolf.json");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::parse_value(&text).map_err(|e| format!("bad JSON in {path}: {e}"))?;
    let Some(Value::Array(cases)) = doc.get_field("cases") else {
        return Err(format!("{path}: missing \"cases\" array"));
    };
    let mut out = Vec::new();
    for c in cases {
        let Some(Value::Str(name)) = c.get_field("case") else {
            return Err(format!("{path}: case entry without \"case\" string"));
        };
        let ns = c
            .get_field("after")
            .and_then(|a| a.get_field("ns_per_iter"))
            .and_then(|v| match v {
                Value::Int(n) => Some(*n as f64),
                Value::UInt(n) => Some(*n as f64),
                Value::Float(n) => Some(*n),
                _ => None,
            })
            .ok_or_else(|| format!("{path}: {name}: missing after.ns_per_iter"))?;
        // "abt_buy/150e_2616cands" → "abt_buy".
        let id = name.split('/').next().unwrap_or(name).to_string();
        out.push((id, ns));
    }
    Ok(out)
}

fn gate_slack() -> f64 {
    match std::env::var("PANDA_BENCH_GATE_SLACK") {
        Ok(s) => s
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|v| *v >= 1.0)
            .unwrap_or_else(|| {
                eprintln!("warning: ignoring invalid PANDA_BENCH_GATE_SLACK={s:?} (want ≥ 1.0)");
                1.0
            }),
        Err(_) => 1.0,
    }
}

fn main() -> ExitCode {
    let baselines = match load_baselines() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let slack = gate_slack();
    let limit_factor = THRESHOLD * slack;
    println!("bench_gate: threshold {THRESHOLD}x, slack {slack}x (PANDA_BENCH_GATE_SLACK)");

    let mut failed = false;
    for case in cases() {
        let Some((_, baseline_ns)) = baselines.iter().find(|(id, _)| id == case.id) else {
            eprintln!("bench_gate: no baseline for case {:?}", case.id);
            failed = true;
            continue;
        };
        // Warm up once (page cache, lazy corpus stats) outside telemetry,
        // then reset so the measured span aggregate covers exactly ITERS
        // calls. init_obs() resets the process-global registry between
        // cases — each snapshot is per-case.
        black_box(generate_auto_lfs(&case.tables, &case.cands, &case.cfg).len());
        panda_bench::init_obs();
        for _ in 0..ITERS {
            black_box(generate_auto_lfs(&case.tables, &case.cands, &case.cfg).len());
        }
        let snap = panda_obs::snapshot();
        let Some(stats) = snap.spans.get("autolf.generate") else {
            eprintln!("bench_gate: {}: no autolf.generate span recorded", case.id);
            failed = true;
            continue;
        };
        let mean_ns = stats.total_ns as f64 / stats.count as f64;
        let limit_ns = baseline_ns * limit_factor;
        let ratio = mean_ns / baseline_ns;
        let verdict = if mean_ns <= limit_ns { "PASS" } else { "FAIL" };
        println!(
            "  {verdict} {:<16} mean {:>12.0} ns/iter  baseline {:>12.0}  ratio {:.2} (limit {:.2})",
            case.id, mean_ns, baseline_ns, ratio, limit_factor
        );
        if mean_ns > limit_ns {
            failed = true;
        }
        let mpath =
            panda_bench::experiments_dir().join(format!("bench_gate_{}.metrics.json", case.id));
        if let Err(e) = std::fs::write(&mpath, snap.to_json()) {
            eprintln!("bench_gate: cannot write {}: {e}", mpath.display());
            failed = true;
        } else {
            println!("       metrics → {}", mpath.display());
        }
    }

    if failed {
        eprintln!("bench_gate: FAILED — autolf.generate regressed past the committed baseline");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: ok");
        ExitCode::SUCCESS
    }
}
