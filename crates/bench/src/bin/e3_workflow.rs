//! **E3 — the LF development workflow** (Figure 3(2), §3 Steps 1–5): a
//! scripted user iterates: smart-sample → write the LF the sample
//! motivates → apply incrementally → check stats. We track the EM Stats
//! Panel plus true quality after every round.
//!
//! Run: `cargo run --release -p panda-bench --bin e3_workflow`

use panda_bench::write_csv;
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_eval::TextTable;
use panda_lf::builders::ExtractionPolicy;
use panda_lf::{BoxedLf, ExtractionLf, NumericToleranceLf, SimilarityLf};
use panda_session::{PandaSession, SessionConfig};
use panda_text::preprocess::standard_pipeline;
use panda_text::{Measure, SimilarityConfig, Tokenizer, Weighting};
use std::sync::Arc;

/// The scripted user's LF ideas, in the order the smart samples would
/// plausibly suggest them.
fn scripted_rounds() -> Vec<(&'static str, BoxedLf)> {
    let cfg = |tok, w, m| SimilarityConfig {
        preprocess: standard_pipeline(),
        tokenizer: tok,
        weighting: w,
        measure: m,
    };
    vec![
        (
            "name_overlap @0.4 (first idea, loose)",
            Arc::new(SimilarityLf::new(
                "name_overlap",
                "name",
                cfg(Tokenizer::Whitespace, Weighting::Uniform, Measure::Jaccard),
                0.4,
                0.1,
            )) as BoxedLf,
        ),
        (
            "name_overlap @0.6 (tightened in Step 4)",
            Arc::new(SimilarityLf::new(
                "name_overlap",
                "name",
                cfg(Tokenizer::Whitespace, Weighting::Uniform, Measure::Jaccard),
                0.6,
                0.1,
            )),
        ),
        (
            "size_unmatch (sizes disagree → -1)",
            Arc::new(ExtractionLf::size_unmatch(&["name", "description"])),
        ),
        (
            "name_3gram (typo-robust)",
            Arc::new(SimilarityLf::new(
                "name_3gram",
                "name",
                cfg(Tokenizer::QGram(3), Weighting::Uniform, Measure::Jaccard),
                0.55,
                0.12,
            )),
        ),
        (
            "model_code (extracted codes agree → +1)",
            Arc::new(ExtractionLf::new(
                "model_code",
                &["name", "description"],
                ExtractionPolicy::Symmetric,
                panda_text::extract::model_codes,
            )),
        ),
        (
            "price_close (within 15% → +1)",
            Arc::new(NumericToleranceLf::new("price_close", "price", 0.15, 0.6)),
        ),
    ]
}

fn main() {
    panda_bench::init_obs();
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(31).with_entities(300),
    );
    let total_gold = task.gold.as_ref().unwrap().len();
    let mut session = PandaSession::load(task, SessionConfig::default());

    let mut table = TextTable::new(&[
        "round",
        "action",
        "n_lfs",
        "matches_found",
        "est_precision",
        "true_P",
        "true_R",
        "true_F1",
    ]);

    let mut record = |round: &str, action: &str, s: &mut PandaSession| {
        // Step 5: spot-label a sample of predicted matches for the panel's
        // estimated precision (gold stands in for the user's eyes).
        let sample = s.sample_predicted_matches(15);
        for row in &sample {
            let truth = row.gold.unwrap();
            s.label_pair(row.candidate_index, truth);
        }
        let em = s.em_stats();
        let m = s.current_metrics().unwrap();
        table.row(&[
            round.to_string(),
            action.to_string(),
            em.n_lfs.to_string(),
            em.matches_found.to_string(),
            em.estimated_precision
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "NAN".to_string()),
            format!("{:.3}", m.precision),
            format!("{:.3}", m.recall),
            format!("{:.3}", m.f1),
        ]);
    };

    println!("E3: scripted development workflow on abt-buy ({total_gold} gold matches)\n");
    record("0", "load + auto LFs", &mut session);

    for (i, (action, lf)) in scripted_rounds().into_iter().enumerate() {
        // Step 2: the user looks at smart samples before each idea.
        let _looked_at = session.smart_sample(10);
        // Step 3: write / revise the LF, apply incrementally.
        session.upsert_lf(lf);
        session.apply();
        record(&(i + 1).to_string(), action, &mut session);
    }

    println!("{}", table.render());
    println!("The shape to check: matches_found and true_F1 rise across rounds;");
    println!("the threshold tightening in round 2 trades recall for precision;");
    println!("est_precision (from 15 spot labels/round) tracks true_P.");
    write_csv("e3_workflow", &table);
}
