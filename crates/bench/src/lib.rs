//! Shared infrastructure for the experiment binaries (one binary per
//! table/figure reproduced — see DESIGN.md §4 and EXPERIMENTS.md).

use panda_datasets::DatasetFamily;
use panda_lf::builders::ExtractionPolicy;
use panda_lf::{BoxedLf, ExtractionLf, NumericToleranceLf, SimilarityLf};
use panda_text::preprocess::standard_pipeline;
use panda_text::{Measure, Preprocess, SimilarityConfig, Tokenizer, Weighting};
use std::path::PathBuf;
use std::sync::Arc;

/// Where experiment CSVs land (`target/experiments/`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Turn on pipeline telemetry for an experiment binary. Every experiment
/// calls this first, so [`write_csv`] can drop a `<id>.metrics.json`
/// snapshot (per-stage spans, counters, gauges) next to the result CSV.
///
/// The registry is process-global, so the snapshot is cleared first:
/// back-to-back experiment runs in one process (or a warm-up pass before
/// a measured one) must not bleed aggregates into each other's
/// `<id>.metrics.json`.
pub fn init_obs() {
    panda_obs::reset();
    panda_obs::set_enabled(true);
}

/// Write one experiment's CSV next to its printed table. When telemetry
/// is live (see [`init_obs`]) the accumulated snapshot is written as
/// `<id>.metrics.json` alongside it.
pub fn write_csv(id: &str, table: &panda_eval::TextTable) {
    let path = experiments_dir().join(format!("{id}.csv"));
    std::fs::write(&path, table.to_csv()).expect("can write experiment csv");
    println!("\n[csv written to {}]", path.display());
    if panda_obs::enabled() {
        let mpath = experiments_dir().join(format!("{id}.metrics.json"));
        std::fs::write(&mpath, panda_obs::snapshot().to_json())
            .expect("can write experiment metrics");
        println!("[metrics written to {}]", mpath.display());
    }
}

fn sim(
    name: &str,
    attr: &str,
    tokenizer: Tokenizer,
    weighting: Weighting,
    measure: Measure,
    upper: f64,
    lower: f64,
) -> BoxedLf {
    Arc::new(SimilarityLf::new(
        name,
        attr,
        SimilarityConfig {
            preprocess: standard_pipeline(),
            tokenizer,
            weighting,
            measure,
        },
        upper,
        lower,
    ))
}

/// The curated ("user-written") LF set per benchmark family — the kind of
/// LFs the paper's demo user ends up with after a few Step-2/3/4
/// iterations. Used by E1 alongside the auto-generated set.
pub fn curated_lfs(family: DatasetFamily) -> Vec<BoxedLf> {
    match family {
        DatasetFamily::AbtBuy | DatasetFamily::AmazonGoogle | DatasetFamily::AbtBuyDirty => vec![
            sim(
                "name_overlap",
                "name",
                Tokenizer::Whitespace,
                Weighting::Uniform,
                Measure::Jaccard,
                0.6,
                0.1,
            ),
            sim(
                "name_tfidf",
                "name",
                Tokenizer::Whitespace,
                Weighting::TfIdf,
                Measure::Cosine,
                0.55,
                0.08,
            ),
            sim(
                "name_3gram",
                "name",
                Tokenizer::QGram(3),
                Weighting::Uniform,
                Measure::Jaccard,
                0.55,
                0.12,
            ),
            Arc::new(ExtractionLf::size_unmatch(&["name", "description"])),
            Arc::new(ExtractionLf::new(
                "model_code",
                &["name", "description"],
                ExtractionPolicy::Symmetric,
                panda_text::extract::model_codes,
            )),
            Arc::new(NumericToleranceLf::new("price_close", "price", 0.15, 0.6)),
        ],
        DatasetFamily::DblpAcm | DatasetFamily::DblpScholar | DatasetFamily::CoraDedup => vec![
            Arc::new(SimilarityLf::new(
                "title_overlap",
                "title",
                SimilarityConfig {
                    preprocess: vec![
                        Preprocess::Lowercase,
                        Preprocess::StripPunctuation,
                        Preprocess::Stem,
                        Preprocess::NormalizeWhitespace,
                    ],
                    tokenizer: Tokenizer::Whitespace,
                    weighting: Weighting::Uniform,
                    measure: Measure::Jaccard,
                },
                0.75,
                0.15,
            )),
            sim(
                "title_3gram",
                "title",
                Tokenizer::QGram(3),
                Weighting::Uniform,
                Measure::Jaccard,
                0.6,
                0.15,
            ),
            Arc::new(SimilarityLf::new(
                "authors_me",
                "authors",
                SimilarityConfig {
                    preprocess: vec![Preprocess::Lowercase, Preprocess::StripPunctuation],
                    tokenizer: Tokenizer::Whitespace,
                    weighting: Weighting::Uniform,
                    measure: Measure::MongeElkan,
                },
                0.9,
                0.3,
            )),
            Arc::new(ExtractionLf::new(
                "year_unmatch",
                &["year"],
                ExtractionPolicy::UnmatchOnly,
                |t| {
                    panda_text::extract::years(t)
                        .iter()
                        .map(u32::to_string)
                        .collect()
                },
            )),
        ],
        DatasetFamily::WalmartAmazon => vec![
            Arc::new(
                SimilarityLf::new(
                    "title_name_tfidf",
                    "title",
                    SimilarityConfig {
                        preprocess: standard_pipeline(),
                        tokenizer: Tokenizer::Whitespace,
                        weighting: Weighting::TfIdf,
                        measure: Measure::Cosine,
                    },
                    0.55,
                    0.08,
                )
                .with_attrs("title", "name"),
            ),
            Arc::new(
                SimilarityLf::new(
                    "model_eq",
                    "modelno",
                    SimilarityConfig {
                        preprocess: standard_pipeline(),
                        tokenizer: Tokenizer::QGram(3),
                        weighting: Weighting::Uniform,
                        measure: Measure::Jaccard,
                    },
                    0.8,
                    0.2,
                )
                .with_attrs("modelno", "model"),
            ),
            Arc::new(
                SimilarityLf::new(
                    "brand_eq",
                    "brand",
                    SimilarityConfig::default_jaccard(),
                    0.9,
                    -1.0,
                )
                .with_attrs("brand", "manufacturer"),
            ),
            Arc::new(NumericToleranceLf::new("price_close", "price", 0.15, 0.6)),
        ],
        DatasetFamily::FodorsZagats => vec![
            sim(
                "name_overlap",
                "name",
                Tokenizer::Whitespace,
                Weighting::Uniform,
                Measure::Jaccard,
                0.6,
                0.1,
            ),
            sim(
                "addr_overlap",
                "addr",
                Tokenizer::Whitespace,
                Weighting::Uniform,
                Measure::Jaccard,
                0.7,
                0.05,
            ),
            Arc::new(ExtractionLf::new(
                "phone_eq",
                &["phone"],
                ExtractionPolicy::Symmetric,
                |t| {
                    // Normalise phone digits, compare as a unit.
                    let digits: String = t.chars().filter(char::is_ascii_digit).collect();
                    if digits.len() >= 7 {
                        vec![digits]
                    } else {
                        vec![]
                    }
                },
            )),
            sim(
                "name_jw",
                "name",
                Tokenizer::Whitespace,
                Weighting::Uniform,
                Measure::JaroWinkler,
                0.92,
                0.5,
            ),
        ],
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_sets_are_nonempty_with_unique_names() {
        for fam in [
            DatasetFamily::AbtBuy,
            DatasetFamily::AmazonGoogle,
            DatasetFamily::WalmartAmazon,
            DatasetFamily::AbtBuyDirty,
            DatasetFamily::DblpAcm,
            DatasetFamily::DblpScholar,
            DatasetFamily::FodorsZagats,
            DatasetFamily::CoraDedup,
        ] {
            let lfs = curated_lfs(fam);
            assert!(lfs.len() >= 4, "{fam:?}");
            let mut names: Vec<&str> = lfs.iter().map(|l| l.name()).collect();
            let n = names.len();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), n, "duplicate LF names for {fam:?}");
        }
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
