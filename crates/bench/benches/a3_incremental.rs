//! **A3 — ablation: incremental LF application** (paper §2.2: "LFs are
//! applied incrementally, i.e. only the new and modified LFs are
//! executed"). We measure `labeler.apply()` after editing ONE LF, with
//! the label matrix already holding N applied LFs:
//!
//! * `incremental`: the session's real path — cached columns are reused,
//!   only the edited LF executes;
//! * `full`: a fresh matrix — every LF executes (what a system without
//!   version tracking would do).
//!
//! Run: `cargo bench -p panda-bench --bench a3_incremental`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_embed::{Blocker, EmbeddingLshBlocker};
use panda_lf::{ClosureLf, Label, LabelMatrix, LfRegistry, SimilarityLf};
use panda_text::{Measure, SimilarityConfig, Tokenizer, Weighting};
use std::hint::black_box;
use std::sync::Arc;

fn build_registry(n_lfs: usize) -> LfRegistry {
    let mut reg = LfRegistry::new();
    for i in 0..n_lfs {
        // Realistic work per LF: a token-Jaccard similarity with varying
        // thresholds so columns differ.
        reg.upsert(Arc::new(SimilarityLf::new(
            format!("lf_{i}"),
            "name",
            SimilarityConfig {
                preprocess: panda_text::preprocess::standard_pipeline(),
                tokenizer: if i % 2 == 0 {
                    Tokenizer::Whitespace
                } else {
                    Tokenizer::QGram(3)
                },
                weighting: Weighting::Uniform,
                measure: if i % 3 == 0 {
                    Measure::Jaccard
                } else {
                    Measure::Cosine
                },
            },
            0.3 + 0.02 * i as f64,
            0.05,
        )));
    }
    reg
}

fn bench_incremental(c: &mut Criterion) {
    let task = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(3).with_entities(200),
    );
    let cands = EmbeddingLshBlocker::new(3).candidates(&task);

    let mut group = c.benchmark_group("apply_after_one_edit");
    // The full-recompute baseline at 32 LFs costs ~0.5s per apply; keep
    // criterion's sampling budget sane.
    group.sample_size(10);
    for &n_lfs in &[1usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::new("incremental", n_lfs), &n_lfs, |b, &n| {
            let mut reg = build_registry(n);
            let mut matrix = LabelMatrix::new();
            matrix.apply(&reg, &task, &cands);
            let mut flip = 0u64;
            b.iter(|| {
                // Edit one LF (cheap closure so the measured cost is the
                // bookkeeping + one column, not similarity math).
                flip += 1;
                let vote = if flip.is_multiple_of(2) {
                    Label::Match
                } else {
                    Label::Abstain
                };
                reg.upsert(Arc::new(ClosureLf::new("edited", move |_| vote)));
                let report = matrix.apply(&reg, &task, &cands);
                black_box(report.applied.len());
            });
        });
        group.bench_with_input(BenchmarkId::new("full", n_lfs), &n_lfs, |b, &n| {
            let mut reg = build_registry(n);
            let mut flip = 0u64;
            b.iter(|| {
                flip += 1;
                let vote = if flip.is_multiple_of(2) {
                    Label::Match
                } else {
                    Label::Abstain
                };
                reg.upsert(Arc::new(ClosureLf::new("edited", move |_| vote)));
                // A fresh matrix recomputes every column.
                let mut matrix = LabelMatrix::new();
                let report = matrix.apply(&reg, &task, &cands);
                black_box(report.applied.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
