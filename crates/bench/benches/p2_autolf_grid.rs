//! **P2 — Auto-LF config-grid throughput** (paper §2.1 feature 1.3,
//! Auto-FuzzyJoin lineage): time `generate_auto_lfs` end to end — corpus
//! stats, candidate scoring under every (attribute × config) grid cell,
//! threshold search, and greedy selection.
//!
//! Throughput is reported in candidate pairs/sec (each pair is scored once
//! per grid cell; the cell count is fixed by `default_config_grid`).
//! `BENCH_autolf.json` at the repo root records the before/after medians
//! for the parallel-execution + token-cache rewiring.
//!
//! Run: `cargo bench -p panda-bench --bench p2_autolf_grid`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use panda_autolf::{generate_auto_lfs, AutoLfConfig};
use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
use panda_embed::{Blocker, EmbeddingLshBlocker};
use std::hint::black_box;

fn bench_autolf_grid(c: &mut Criterion) {
    let tables = generate(
        DatasetFamily::AbtBuy,
        &GeneratorConfig::new(77).with_entities(150),
    );
    let cands = EmbeddingLshBlocker::new(7).candidates(&tables);
    let cfg = AutoLfConfig::default();

    let mut g = c.benchmark_group("autolf_grid");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cands.len() as u64));
    g.bench_function(format!("abt_buy/150e_{}cands", cands.len()), |b| {
        b.iter(|| black_box(generate_auto_lfs(&tables, &cands, &cfg)).len());
    });

    // Schema-mismatched variant: attribute pairs double the scored axes.
    let wa = generate(
        DatasetFamily::WalmartAmazon,
        &GeneratorConfig::new(55).with_entities(150),
    );
    let wa_cands = EmbeddingLshBlocker::new(55).candidates(&wa);
    let wa_cfg = AutoLfConfig {
        attribute_pairs: vec![
            ("title".into(), "name".into()),
            ("modelno".into(), "model".into()),
        ],
        ..AutoLfConfig::default()
    };
    g.throughput(Throughput::Elements(wa_cands.len() as u64));
    g.bench_function(
        format!("walmart_amazon/150e_{}cands", wa_cands.len()),
        |b| {
            b.iter(|| black_box(generate_auto_lfs(&wa, &wa_cands, &wa_cfg)).len());
        },
    );
    g.finish();
}

criterion_group!(benches, bench_autolf_grid);
criterion_main!(benches);
