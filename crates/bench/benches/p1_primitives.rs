//! **P1 — primitive throughput** (§2.1 feature 1.2): microbenchmarks of
//! the utility-library building blocks every LF calls in its inner loop,
//! plus the blocking primitives.
//!
//! Run: `cargo bench -p panda-bench --bench p1_primitives`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use panda_embed::{HyperplaneLsh, TupleEmbedder};
use panda_lf::{Label, PackedVotes};
use panda_regex::Regex;
use panda_text::preprocess::{apply_pipeline, standard_pipeline};
use panda_text::{sim, stem, tokenize::Tokenizer};
use std::hint::black_box;

const NAME_A: &str = "Sony Bravia KDL-40V2500 40' LCD Flat-Panel HDTV, Black";
const NAME_B: &str = "sony bravia kdl 40v2500 40in lcd hdtv (black)";
const DESC: &str = "High-definition 1080p flat panel television with HDMI, USB, \
                    energy star certification and wall mountable widescreen design";

fn bench_text(c: &mut Criterion) {
    let mut g = c.benchmark_group("text");
    g.throughput(Throughput::Elements(1));

    g.bench_function("preprocess/standard_pipeline", |b| {
        let p = standard_pipeline();
        b.iter(|| black_box(apply_pipeline(&p, black_box(NAME_A))));
    });
    g.bench_function("stem/porter", |b| {
        b.iter(|| black_box(stem::porter_stem(black_box("generalizations"))));
    });
    g.bench_function("tokenize/whitespace", |b| {
        b.iter(|| black_box(Tokenizer::Whitespace.tokens(black_box(DESC))));
    });
    g.bench_function("tokenize/qgram3", |b| {
        b.iter(|| black_box(Tokenizer::QGram(3).tokens(black_box(NAME_A))));
    });

    let ta = Tokenizer::Whitespace.tokens(NAME_A);
    let tb = Tokenizer::Whitespace.tokens(NAME_B);
    g.bench_function("sim/jaccard", |b| {
        b.iter(|| black_box(sim::jaccard(black_box(&ta), black_box(&tb))));
    });
    let ha = sim::sorted_token_hashes(&ta);
    let hb = sim::sorted_token_hashes(&tb);
    g.bench_function("sim/jaccard_sorted_prehashed", |b| {
        b.iter(|| black_box(sim::jaccard_sorted(black_box(&ha), black_box(&hb))));
    });
    g.bench_function("sim/sorted_token_hashes", |b| {
        b.iter(|| black_box(sim::sorted_token_hashes(black_box(&ta))));
    });
    g.bench_function("sim/levenshtein", |b| {
        b.iter(|| black_box(sim::levenshtein(black_box(NAME_A), black_box(NAME_B))));
    });
    g.bench_function("sim/levenshtein_bounded_4", |b| {
        b.iter(|| {
            black_box(sim::levenshtein_bounded(
                black_box(NAME_A),
                black_box(NAME_B),
                4,
            ))
        });
    });
    g.bench_function("sim/jaro_winkler", |b| {
        b.iter(|| black_box(sim::jaro_winkler(black_box(NAME_A), black_box(NAME_B))));
    });
    g.bench_function("sim/monge_elkan_jw", |b| {
        b.iter(|| black_box(sim::monge_elkan_sym(&ta, &tb, sim::jaro_winkler)));
    });
    g.bench_function("sim/levenshtein_exceeds_0.8", |b| {
        b.iter(|| {
            black_box(sim::levenshtein_similarity_exceeds(
                black_box(NAME_A),
                black_box(NAME_B),
                0.8,
            ))
        });
    });
    g.finish();
}

fn bench_regex(c: &mut Criterion) {
    let mut g = c.benchmark_group("regex");
    let size_re = Regex::new_ci(r#"(\d+(?:\.\d+)?)\s*(?:''|'|"|-inch|inch|in\b)"#).unwrap();
    g.bench_function("size_extraction", |b| {
        b.iter(|| black_box(size_re.captures(black_box(NAME_A))));
    });
    let word_re = Regex::new(r"\w+").unwrap();
    g.bench_function("word_find_iter", |b| {
        b.iter(|| black_box(word_re.find_iter(black_box(DESC)).count()));
    });
    g.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocking");
    let embedder = TupleEmbedder::new(256);
    g.bench_function("embed_256d", |b| {
        b.iter(|| black_box(embedder.embed_text(black_box(DESC))));
    });
    let lsh = HyperplaneLsh::new(256, 16, 8, 7);
    let v = embedder.embed_text(DESC);
    g.bench_function("lsh_signature_16x8", |b| {
        b.iter(|| black_box(lsh.signature(black_box(&v))));
    });
    g.finish();
}

fn bench_votes(c: &mut Criterion) {
    let mut g = c.benchmark_group("votes");
    let mut packed = PackedVotes::with_capacity(100_000);
    for i in 0..100_000u32 {
        packed.push(match i % 5 {
            0 => Label::Match,
            1 | 2 => Label::NonMatch,
            _ => Label::Abstain,
        });
    }
    let scalar = packed.decode();
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("counts_packed_100k", |b| {
        b.iter(|| black_box(black_box(&packed).counts()));
    });
    g.bench_function("counts_scalar_100k", |b| {
        b.iter(|| {
            let (mut m, mut nm, mut a) = (0usize, 0usize, 0usize);
            for &v in black_box(&scalar).iter() {
                match v {
                    1.. => m += 1,
                    0 => a += 1,
                    _ => nm += 1,
                }
            }
            black_box((m, nm, a))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_text,
    bench_regex,
    bench_embedding,
    bench_votes
);
criterion_main!(benches);
