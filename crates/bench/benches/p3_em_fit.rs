//! **P3 — EM-fit kernels** (paper §2.1 feature 3): the labeling-model fit
//! on a planted matrix, plus a head-to-head of one EM iteration (M-step +
//! E-step) in the old scalar `Vec<i8>` shape against the shipped
//! bit-packed word-at-a-time shape. `BENCH_emfit.json` at the repo root
//! records the fit medians the bench gate holds the line on, and the
//! step-kernel ratio backing the packed-vote rewrite.
//!
//! Run: `cargo bench -p panda-bench --bench p3_em_fit`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use panda_lf::{PackedVotes, VOTES_PER_WORD};
use panda_model::testutil::{plant, Planted, PlantedLf};
use panda_model::{LabelModel, PandaModel, SnorkelModel};
use std::hint::black_box;
use std::time::Instant;

/// The shared workload: 20k pairs, 10 LFs of mixed quality/propensity —
/// large enough that the EM inner loops dominate the fit.
fn workload() -> Planted {
    let lfs = [
        PlantedLf::symmetric(0.9, 0.85),
        PlantedLf::symmetric(0.8, 0.9),
        PlantedLf::symmetric(0.7, 0.75),
        PlantedLf::symmetric(0.5, 0.8),
        PlantedLf::symmetric(0.9, 0.7),
        PlantedLf::symmetric(0.3, 0.95),
        PlantedLf::symmetric(0.6, 0.65),
        PlantedLf::symmetric(0.8, 0.8),
        PlantedLf::symmetric(0.4, 0.7),
        PlantedLf::symmetric(0.7, 0.9),
    ];
    plant(20_000, 0.15, &lfs, 4242)
}

fn bench_fit(c: &mut Criterion) {
    let p = workload();
    let n = p.candidates.len() as u64;

    let mut g = c.benchmark_group("em_fit");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("panda/20k_pairs_10lfs", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                let mut model = PandaModel::new();
                black_box(model.fit_predict(&p.matrix, None));
            }
            start.elapsed()
        });
    });
    g.bench_function("snorkel/20k_pairs_10lfs", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                let mut model = SnorkelModel::new();
                black_box(model.fit_predict(&p.matrix, None));
            }
            start.elapsed()
        });
    });
    g.finish();
}

/// One EM iteration (M-step counts + E-step posterior update) in the
/// pre-rewrite scalar shape: pair-major over `Vec<i8>` columns with a
/// branch per vote.
fn scalar_em_step(cols: &[Vec<i8>], gamma: &mut [f64], theta: &mut [[f64; 3]]) -> f64 {
    let n = gamma.len();
    for (j, col) in cols.iter().enumerate() {
        let mut cm = [0.5f64; 3];
        for (i, &v) in col.iter().enumerate() {
            let slot = match v {
                1.. => 0,
                0 => 2,
                _ => 1,
            };
            cm[slot] += gamma[i];
        }
        let z: f64 = cm.iter().sum();
        theta[j] = [cm[0] / z, cm[1] / z, cm[2] / z];
    }
    let mut delta = 0.0;
    for i in 0..n {
        let mut lo = 0.0;
        for (j, col) in cols.iter().enumerate() {
            let slot = match col[i] {
                1.. => 0,
                0 => 2,
                _ => 1,
            };
            lo += theta[j][slot].ln().clamp(-2.5, 2.5);
        }
        let g = 1.0 / (1.0 + (-lo).exp());
        delta += (g - gamma[i]).abs();
        gamma[i] = g;
    }
    delta
}

/// The same iteration in the shipped packed shape: LF-major over 2-bit
/// vote words, per-LF 4-entry term tables, branch-free lane decode.
fn packed_em_step(cols: &[&PackedVotes], gamma: &mut [f64], theta: &mut [[f64; 3]]) -> f64 {
    const CODE_SLOT: [usize; 4] = [2, 0, 1, 2];
    let n = gamma.len();
    for (j, col) in cols.iter().enumerate() {
        let mut cm = [0.5f64; 3];
        for (w_idx, &word) in col.words().iter().enumerate() {
            let start = w_idx * VOTES_PER_WORD;
            let lanes = (n - start).min(VOTES_PER_WORD);
            let mut w = word;
            for &g in &gamma[start..start + lanes] {
                cm[CODE_SLOT[(w & 0b11) as usize]] += g;
                w >>= 2;
            }
        }
        let z: f64 = cm.iter().sum();
        theta[j] = [cm[0] / z, cm[1] / z, cm[2] / z];
    }
    let mut lo = vec![0.0f64; n];
    for (j, col) in cols.iter().enumerate() {
        let table: [f64; 4] = [
            theta[j][2].ln().clamp(-2.5, 2.5),
            theta[j][0].ln().clamp(-2.5, 2.5),
            theta[j][1].ln().clamp(-2.5, 2.5),
            0.0,
        ];
        for (w_idx, &word) in col.words().iter().enumerate() {
            let start = w_idx * VOTES_PER_WORD;
            let lanes = (n - start).min(VOTES_PER_WORD);
            let mut w = word;
            for lo_i in &mut lo[start..start + lanes] {
                *lo_i += table[(w & 0b11) as usize];
                w >>= 2;
            }
        }
    }
    let mut delta = 0.0;
    for (g_i, &lo_i) in gamma.iter_mut().zip(&lo) {
        let g = 1.0 / (1.0 + (-lo_i).exp());
        delta += (g - *g_i).abs();
        *g_i = g;
    }
    delta
}

fn bench_step_kernels(c: &mut Criterion) {
    let p = workload();
    let n = p.candidates.len();
    let scalar_cols: Vec<Vec<i8>> = p.matrix.columns().map(|(_, c)| c).collect();
    let packed_cols: Vec<&PackedVotes> = p.matrix.packed_columns().map(|(_, c)| c).collect();
    let gamma0 = vec![0.15f64; n];
    let m = scalar_cols.len();

    let mut g = c.benchmark_group("em_step");
    g.throughput(Throughput::Elements((n * m) as u64));
    g.bench_function("scalar_i8", |b| {
        b.iter_custom(|iters| {
            let mut gamma = gamma0.clone();
            let mut theta = vec![[0.0f64; 3]; m];
            let start = Instant::now();
            for _ in 0..iters {
                black_box(scalar_em_step(&scalar_cols, &mut gamma, &mut theta));
            }
            start.elapsed()
        });
    });
    g.bench_function("packed_words", |b| {
        b.iter_custom(|iters| {
            let mut gamma = gamma0.clone();
            let mut theta = vec![[0.0f64; 3]; m];
            let start = Instant::now();
            for _ in 0..iters {
                black_box(packed_em_step(&packed_cols, &mut gamma, &mut theta));
            }
            start.elapsed()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fit, bench_step_kernels);
criterion_main!(benches);
