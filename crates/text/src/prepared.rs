//! Prepared columns and the token cache (the "prepare once, score many"
//! layer).
//!
//! Scoring a candidate pair under a [`SimilarityConfig`] repeats the same
//! three steps on both strings: preprocess, tokenize, weight. When a grid
//! of configurations is evaluated over thousands of candidate pairs —
//! Auto-FuzzyJoin enumeration, LF matrix application — the same *column
//! value* is re-preprocessed and re-tokenized hundreds of times. A
//! [`PreparedColumn`] does that work exactly once per `(table, attribute,
//! pipeline, tokenizer)` combination; a [`TokenCache`] memoises prepared
//! columns (and derived per-record weight vectors) under stable string
//! keys so independent call sites share the work.
//!
//! Cache-key contract: a [`ColumnKey`] identifies an immutable snapshot of
//! one column's text under one preprocessing pipeline and one tokenizer.
//! Pipeline and tokenizer ids are pure functions of the configuration
//! ([`pipeline_id`], `Tokenizer::name`), so the only invalidation rule a
//! caller must observe is: **if a table's rows change, drop that table's
//! entries** ([`TokenCache::invalidate_table`]). Everything else is
//! content-addressed.
//!
//! [`SimilarityConfig`]: crate::config::SimilarityConfig

use crate::config::Weighting;
use crate::preprocess::{apply_pipeline, Preprocess};
use crate::sim::sorted_token_hashes;
use crate::tokenize::Tokenizer;
use crate::weight::{tf_weights, tfidf_weights, uniform_weights, CorpusStats, SortedWeights};
use std::collections::HashMap;
use std::sync::Arc;

/// Stable identifier of a preprocessing pipeline (`"lower+nopunct"`,
/// `"raw"` for the empty pipeline). Matches the pipeline segment of
/// `SimilarityConfig::id`.
pub fn pipeline_id(pipeline: &[Preprocess]) -> String {
    if pipeline.is_empty() {
        "raw".to_string()
    } else {
        pipeline
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// One column of one table, preprocessed and tokenized under a single
/// `(pipeline, tokenizer)` choice. Indexed by record position.
#[derive(Debug, Clone, Default)]
pub struct PreparedColumn {
    cleaned: Vec<String>,
    tokens: Vec<Vec<String>>,
    hashes: Vec<Vec<u64>>,
    blank: Vec<bool>,
}

impl PreparedColumn {
    /// Preprocess + tokenize every value of a column. `blank` records the
    /// *raw* text being empty after trimming (scoring treats missing text
    /// as "never joins", so the flag must not depend on the pipeline).
    pub fn build<S: AsRef<str>>(
        texts: &[S],
        pipeline: &[Preprocess],
        tokenizer: Tokenizer,
    ) -> Self {
        let mut cleaned = Vec::with_capacity(texts.len());
        let mut tokens = Vec::with_capacity(texts.len());
        let mut hashes = Vec::with_capacity(texts.len());
        let mut blank = Vec::with_capacity(texts.len());
        for t in texts {
            let raw = t.as_ref();
            blank.push(raw.trim().is_empty());
            let c = apply_pipeline(pipeline, raw);
            let toks = tokenizer.tokens(&c);
            hashes.push(sorted_token_hashes(&toks));
            tokens.push(toks);
            cleaned.push(c);
        }
        PreparedColumn {
            cleaned,
            tokens,
            hashes,
            blank,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.cleaned.len()
    }

    /// True when the column has no records.
    pub fn is_empty(&self) -> bool {
        self.cleaned.is_empty()
    }

    /// The preprocessed text of record `i`.
    pub fn cleaned(&self, i: usize) -> &str {
        &self.cleaned[i]
    }

    /// The token vector of record `i`.
    pub fn tokens(&self, i: usize) -> &[String] {
        &self.tokens[i]
    }

    /// Record `i`'s token set as a sorted, deduplicated hash array — the
    /// form the `*_sorted` similarity kernels consume (see
    /// [`crate::sim::sorted_token_hashes`]).
    pub fn token_hashes(&self, i: usize) -> &[u64] {
        &self.hashes[i]
    }

    /// Was record `i`'s raw text blank (empty after trimming)?
    pub fn is_blank(&self, i: usize) -> bool {
        self.blank[i]
    }

    /// Borrow record `i` for scoring (no weight vector attached).
    pub fn record(&self, i: usize) -> PreparedRef<'_> {
        PreparedRef {
            cleaned: &self.cleaned[i],
            tokens: &self.tokens[i],
            hashes: &self.hashes[i],
            weights: None,
        }
    }

    /// Borrow record `i` for scoring with its prebuilt weight vector.
    pub fn record_weighted<'a>(
        &'a self,
        i: usize,
        weights: &'a [SortedWeights],
    ) -> PreparedRef<'a> {
        PreparedRef {
            cleaned: &self.cleaned[i],
            tokens: &self.tokens[i],
            hashes: &self.hashes[i],
            weights: Some(&weights[i]),
        }
    }

    /// Feed every record's token vector into corpus statistics, one
    /// document per record (the same accounting as tokenizing each record
    /// and calling `CorpusStats::add_document`).
    pub fn add_documents(&self, stats: &mut CorpusStats) {
        for toks in &self.tokens {
            stats.add_document(toks);
        }
    }

    /// Per-record weight vectors under `weighting`. `stats` supplies
    /// corpus IDF for [`Weighting::TfIdf`]; without stats TF-IDF falls
    /// back to TF, mirroring `SimilarityConfig::score`.
    pub fn weight_vectors(
        &self,
        weighting: Weighting,
        stats: Option<&CorpusStats>,
    ) -> Vec<SortedWeights> {
        self.tokens
            .iter()
            .map(|toks| {
                SortedWeights::from_weighted(&match (weighting, stats) {
                    (Weighting::Uniform, _) => uniform_weights(toks),
                    (Weighting::Tf, _) | (Weighting::TfIdf, None) => tf_weights(toks),
                    (Weighting::TfIdf, Some(s)) => tfidf_weights(toks, s),
                })
            })
            .collect()
    }
}

/// A borrowed, fully prepared view of one record's column value — what
/// `SimilarityConfig::score_prepared` consumes.
#[derive(Debug, Clone, Copy)]
pub struct PreparedRef<'a> {
    /// Preprocessed text (string measures).
    pub cleaned: &'a str,
    /// Token vector (Monge-Elkan and anything else that needs content).
    pub tokens: &'a [String],
    /// Sorted deduplicated token hashes (unweighted set measures).
    pub hashes: &'a [u64],
    /// Prebuilt sorted weight vector (weighted set measures); `None` falls
    /// back to building weights from `tokens` on the fly.
    pub weights: Option<&'a SortedWeights>,
}

/// Cache key: one column of one table under one pipeline and tokenizer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnKey {
    /// Caller-chosen table identifier (e.g. `"left"` / `"right"` or the
    /// table's name). The text crate is table-agnostic; the id only needs
    /// to be stable for the lifetime of the cache.
    pub table: String,
    /// Column (attribute) name.
    pub attribute: String,
    /// Pipeline id from [`pipeline_id`].
    pub pipeline: String,
    /// Tokenizer id from `Tokenizer::name`.
    pub tokenizer: String,
}

impl ColumnKey {
    /// Convenience constructor deriving the pipeline/tokenizer ids.
    pub fn new(
        table: impl Into<String>,
        attribute: impl Into<String>,
        pipeline: &[Preprocess],
        tokenizer: Tokenizer,
    ) -> Self {
        ColumnKey {
            table: table.into(),
            attribute: attribute.into(),
            pipeline: pipeline_id(pipeline),
            tokenizer: tokenizer.name(),
        }
    }
}

/// Key for a derived per-record weight-vector cache entry: the prepared
/// column plus the weighting scheme and (for TF-IDF) an identifier of the
/// corpus the IDF weights came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WeightKey {
    /// The underlying prepared column.
    pub column: ColumnKey,
    /// Weighting name (`Weighting::name`).
    pub weighting: String,
    /// Caller-chosen corpus identifier (empty for corpus-free weightings).
    pub corpus: String,
}

/// Memoises [`PreparedColumn`]s and derived weight vectors. Build phases
/// take `&mut self`; the returned `Arc`s are freely shareable across the
/// worker threads of a subsequent parallel scoring phase.
#[derive(Debug, Default)]
pub struct TokenCache {
    columns: HashMap<ColumnKey, Arc<PreparedColumn>>,
    weighted: HashMap<WeightKey, Arc<Vec<SortedWeights>>>,
}

impl TokenCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a prepared column.
    pub fn column(&self, key: &ColumnKey) -> Option<Arc<PreparedColumn>> {
        self.columns.get(key).cloned()
    }

    /// Return the prepared column for `key`, building it with `texts` on
    /// the first request. `texts` is only called on a miss.
    pub fn column_or_build<S: AsRef<str>>(
        &mut self,
        key: ColumnKey,
        texts: impl FnOnce() -> Vec<S>,
        pipeline: &[Preprocess],
        tokenizer: Tokenizer,
    ) -> Arc<PreparedColumn> {
        if let Some(col) = self.columns.get(&key) {
            panda_obs::counter_add("text.token_cache.hits", 1);
            return col.clone();
        }
        panda_obs::counter_add("text.token_cache.misses", 1);
        let col = Arc::new(PreparedColumn::build(&texts(), pipeline, tokenizer));
        self.columns.insert(key, col.clone());
        col
    }

    /// Look up a derived weight-vector entry.
    pub fn weights(&self, key: &WeightKey) -> Option<Arc<Vec<SortedWeights>>> {
        self.weighted.get(key).cloned()
    }

    /// Return the weight vectors for `key`, deriving them from the
    /// prepared column on the first request. The column must already be
    /// cached (weights are always derived, never built from raw text).
    pub fn weights_or_build(
        &mut self,
        key: WeightKey,
        weighting: Weighting,
        stats: Option<&CorpusStats>,
    ) -> Arc<Vec<SortedWeights>> {
        if let Some(w) = self.weighted.get(&key) {
            panda_obs::counter_add("text.weight_cache.hits", 1);
            return w.clone();
        }
        panda_obs::counter_add("text.weight_cache.misses", 1);
        let col = self
            .columns
            .get(&key.column)
            .expect("weights_or_build: prepared column must be cached first")
            .clone();
        let w = Arc::new(col.weight_vectors(weighting, stats));
        self.weighted.insert(key, w.clone());
        w
    }

    /// Number of cached prepared columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty() && self.weighted.is_empty()
    }

    /// Drop every entry for `table` — the one invalidation rule: call this
    /// whenever that table's rows change.
    pub fn invalidate_table(&mut self, table: &str) {
        self.columns.retain(|k, _| k.table != table);
        self.weighted.retain(|k, _| k.column.table != table);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.columns.clear();
        self.weighted.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Measure, SimilarityConfig};
    use crate::preprocess::standard_pipeline;

    fn texts() -> Vec<&'static str> {
        vec!["Sony Bravia 40' LCD TV", "  ", "LG OLED-55 television"]
    }

    #[test]
    fn prepared_matches_direct_pipeline() {
        let pp = standard_pipeline();
        let col = PreparedColumn::build(&texts(), &pp, Tokenizer::Whitespace);
        assert_eq!(col.len(), 3);
        for (i, t) in texts().iter().enumerate() {
            let cleaned = apply_pipeline(&pp, t);
            assert_eq!(col.cleaned(i), cleaned);
            assert_eq!(col.tokens(i), Tokenizer::Whitespace.tokens(&cleaned));
        }
        assert!(!col.is_blank(0));
        assert!(col.is_blank(1), "whitespace-only raw text is blank");
    }

    #[test]
    fn score_prepared_equals_score_across_the_grid() {
        let a = "Sony Bravia 40' LCD TV";
        let b = "sony bravia 40 lcd television";
        let mut stats = CorpusStats::new();
        stats.add_document(&["sony", "bravia", "tv"]);
        stats.add_document(&["lg", "tv"]);
        for cfg in crate::config::default_config_grid() {
            let ca = PreparedColumn::build(&[a], &cfg.preprocess, cfg.tokenizer);
            let cb = PreparedColumn::build(&[b], &cfg.preprocess, cfg.tokenizer);
            let s = cfg.weighting == Weighting::TfIdf;
            let wa = ca.weight_vectors(cfg.weighting, s.then_some(&stats));
            let wb = cb.weight_vectors(cfg.weighting, s.then_some(&stats));
            let direct = cfg.score(a, b, s.then_some(&stats));
            let prepared =
                cfg.score_prepared(&ca.record_weighted(0, &wa), &cb.record_weighted(0, &wb));
            assert!(
                (direct - prepared).abs() < 1e-12,
                "{}: direct {direct} != prepared {prepared}",
                cfg.id()
            );
            // Weight-free refs fall back to on-the-fly weights, which for
            // TF-IDF degrades to TF — exactly `score` without stats.
            let bare = cfg.score_prepared(&ca.record(0), &cb.record(0));
            let direct_no_stats = cfg.score(a, b, None);
            assert!(
                (direct_no_stats - bare).abs() < 1e-12,
                "{}: bare fallback",
                cfg.id()
            );
        }
    }

    #[test]
    fn score_prepared_covers_non_grid_measures() {
        for measure in [Measure::Dice, Measure::Overlap, Measure::MongeElkan] {
            let cfg = SimilarityConfig {
                measure,
                ..SimilarityConfig::default_jaccard()
            };
            let a = "sony bravia tv";
            let b = "sony bravia lcd";
            let ca = PreparedColumn::build(&[a], &cfg.preprocess, cfg.tokenizer);
            let cb = PreparedColumn::build(&[b], &cfg.preprocess, cfg.tokenizer);
            let direct = cfg.score(a, b, None);
            let prepared = cfg.score_prepared(&ca.record(0), &cb.record(0));
            assert!((direct - prepared).abs() < 1e-12, "{}", cfg.id());
        }
    }

    #[test]
    fn corpus_stats_from_prepared_match_manual_accumulation() {
        let pp = standard_pipeline();
        let col = PreparedColumn::build(&texts(), &pp, Tokenizer::QGram(3));
        let mut from_col = CorpusStats::new();
        col.add_documents(&mut from_col);
        let mut manual = CorpusStats::new();
        for t in texts() {
            manual.add_document(&Tokenizer::QGram(3).tokens(&apply_pipeline(&pp, t)));
        }
        assert_eq!(from_col.n_docs(), manual.n_docs());
        assert_eq!(from_col.vocabulary_size(), manual.vocabulary_size());
        assert_eq!(from_col.doc_freq("#so"), manual.doc_freq("#so"));
    }

    #[test]
    fn cache_builds_once_and_invalidates_per_table() {
        let mut cache = TokenCache::new();
        let pp = standard_pipeline();
        let key = ColumnKey::new("left", "name", &pp, Tokenizer::Whitespace);
        let mut builds = 0;
        for _ in 0..3 {
            cache.column_or_build(
                key.clone(),
                || {
                    builds += 1;
                    texts()
                },
                &pp,
                Tokenizer::Whitespace,
            );
        }
        assert_eq!(builds, 1, "texts closure runs only on the miss");
        assert_eq!(cache.len(), 1);

        let wkey = WeightKey {
            column: key.clone(),
            weighting: Weighting::Uniform.name().to_string(),
            corpus: String::new(),
        };
        let w1 = cache.weights_or_build(wkey.clone(), Weighting::Uniform, None);
        let w2 = cache.weights_or_build(wkey.clone(), Weighting::Uniform, None);
        assert!(Arc::ptr_eq(&w1, &w2), "weight vectors are memoised");
        assert_eq!(w1.len(), 3);

        let other = ColumnKey::new("right", "name", &pp, Tokenizer::Whitespace);
        cache.column_or_build(other.clone(), texts, &pp, Tokenizer::Whitespace);
        cache.invalidate_table("left");
        assert!(cache.column(&key).is_none());
        assert!(cache.weights(&wkey).is_none());
        assert!(cache.column(&other).is_some(), "other table survives");
    }

    #[test]
    fn pipeline_ids_are_stable() {
        assert_eq!(pipeline_id(&[]), "raw");
        let pp = standard_pipeline();
        assert!(!pipeline_id(&pp).is_empty());
        assert_eq!(pipeline_id(&pp), pipeline_id(&standard_pipeline()));
    }
}
