//! The built-in EM utility library (the paper's §2.1, feature 1.2).
//!
//! Labeling functions for entity matching are overwhelmingly built from
//! four kinds of primitives, which this crate provides along the same four
//! axes as Panda's built-in library:
//!
//! 1. **Text pre-processing** ([`preprocess`]) — lower-casing, punctuation
//!    stripping, whitespace normalisation, accent folding, Porter stemming,
//!    number normalisation, stop-word removal.
//! 2. **Tokenization** ([`tokenize`]) — whitespace / alphanumeric word
//!    tokens, character q-grams, word n-grams.
//! 3. **Token weighting** ([`weight`]) — uniform, TF, and corpus-level
//!    TF-IDF weights.
//! 4. **Distance functions** ([`sim`]) — Jaccard (plain and weighted),
//!    overlap, Dice, cosine, Levenshtein (plain, bounded, normalised),
//!    Jaro, Jaro-Winkler, Monge-Elkan.
//!
//! [`align`] adds sequence-alignment similarities (Needleman-Wunsch,
//! Smith-Waterman, affine-gap) and [`phonetic`] adds Soundex/Metaphone
//! encodings — both classic EM-toolkit members beyond the paper's four
//! axes. [`extract`] adds regex-based attribute extractors (sizes, prices, model
//! codes, years) built on the in-tree [`panda_regex`] engine — these power
//! LFs like the paper's `size_unmatch`. [`config`] combines one choice
//! along each axis into a [`config::SimilarityConfig`], the unit that
//! Auto-FuzzyJoin enumerates when generating LFs automatically.
//!
//! All similarity functions return values in `[0, 1]`, `1` meaning
//! identical, so thresholds compose uniformly across measures.
//!
//! ```
//! use panda_text::{SimilarityConfig, Preprocess, Tokenizer, Weighting, Measure};
//!
//! // The measure behind the paper's `name_overlap` LF:
//! let cfg = SimilarityConfig::default_jaccard();
//! let s = cfg.score("Sony Bravia 40' LCD TV", "sony bravia 40 lcd tv", None);
//! assert!(s > 0.6);
//!
//! // Or compose the four axes yourself:
//! let custom = SimilarityConfig {
//!     preprocess: vec![Preprocess::Lowercase, Preprocess::Stem],
//!     tokenizer: Tokenizer::QGram(3),
//!     weighting: Weighting::Uniform,
//!     measure: Measure::Cosine,
//! };
//! assert!(custom.score("connected", "connecting", None) > 0.5);
//! ```

pub mod align;
pub mod config;
pub mod extract;
pub mod phonetic;
pub mod prepared;
pub mod preprocess;
pub mod sim;
pub mod stem;
pub mod tokenize;
pub mod weight;

pub use config::{Measure, SimilarityConfig, Weighting};
pub use prepared::{ColumnKey, PreparedColumn, PreparedRef, TokenCache, WeightKey};
pub use preprocess::{apply_pipeline, Preprocess};
pub use tokenize::Tokenizer;
pub use weight::{CorpusStats, SortedWeights};
