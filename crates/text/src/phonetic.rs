//! Phonetic encodings: Soundex and a simplified Metaphone.
//!
//! Person and place names get misspelled phonetically ("Smith" /
//! "Smyth", "Catherine" / "Katherine"); LFs over name-ish attributes pair
//! a phonetic-equality vote with an edit-distance vote. Both encoders are
//! the classic algorithms, implemented from scratch.

/// American Soundex: first letter + three digits (`"Robert"` → `"R163"`).
/// Returns `None` for inputs with no ASCII letter.
pub fn soundex(word: &str) -> Option<String> {
    let letters: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let first = *letters.first()?;

    let code = |c: char| -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            _ => 0, // vowels + H, W, Y
        }
    };

    let mut out = String::new();
    out.push(first);
    let mut prev = code(first);
    for &c in &letters[1..] {
        let d = code(c);
        // H and W are transparent: they do not reset the previous code.
        if c == 'H' || c == 'W' {
            continue;
        }
        if d != 0 && d != prev {
            out.push(char::from_digit(u32::from(d), 10).unwrap());
            if out.len() == 4 {
                break;
            }
        }
        prev = d;
    }
    while out.len() < 4 {
        out.push('0');
    }
    Some(out)
}

/// A simplified Metaphone: maps a word to a consonant-skeleton key.
/// Covers the high-frequency English rules (PH→F, CK→K, SH→X, TH→0,
/// soft C/G, silent letters); sufficient for name blocking/voting, not a
/// full Double Metaphone.
pub fn metaphone(word: &str) -> Option<String> {
    let w: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    if w.is_empty() {
        return None;
    }
    let mut out = String::new();
    let mut i = 0;
    // Initial-letter exceptions: silent letters in KN-, GN-, PN-, WR-, X-.
    if w.len() >= 2 {
        match (w[0], w[1]) {
            ('K', 'N') | ('G', 'N') | ('P', 'N') | ('W', 'R') => i = 1,
            ('X', _) => {
                out.push('S');
                i = 1;
            }
            _ => {}
        }
    }
    let at = |k: usize| -> char { w.get(k).copied().unwrap_or('\0') };
    let is_vowel = |c: char| matches!(c, 'A' | 'E' | 'I' | 'O' | 'U');
    while i < w.len() && out.len() < 8 {
        let c = w[i];
        // Skip doubled letters (except C, which has CC rules via lookahead).
        if i > 0 && c == w[i - 1] && c != 'C' {
            i += 1;
            continue;
        }
        match c {
            'A' | 'E' | 'I' | 'O' | 'U' => {
                if i == 0 {
                    out.push(c);
                }
            }
            'B' => {
                // Silent terminal B after M ("dumb").
                if !(i + 1 == w.len() && at(i.wrapping_sub(1)) == 'M') {
                    out.push('B');
                }
            }
            'C' => {
                if at(i + 1) == 'H' {
                    out.push('X'); // "church"
                    i += 1;
                } else if matches!(at(i + 1), 'I' | 'E' | 'Y') {
                    out.push('S'); // soft C
                } else {
                    out.push('K');
                }
            }
            'D' => {
                if at(i + 1) == 'G' && matches!(at(i + 2), 'E' | 'I' | 'Y') {
                    out.push('J'); // "edge"
                    i += 1;
                } else {
                    out.push('T');
                }
            }
            'G' => {
                if at(i + 1) == 'H' && !is_vowel(at(i + 2)) {
                    // silent GH ("night")
                    i += 1;
                } else if at(i + 1) == 'N' {
                    // silent G in GN
                } else if matches!(at(i + 1), 'I' | 'E' | 'Y') {
                    out.push('J');
                } else {
                    out.push('K');
                }
            }
            'H' => {
                // H is audible only between vowel and vowel-ish.
                if i > 0 && is_vowel(at(i - 1)) && !is_vowel(at(i + 1)) {
                    // silent
                } else {
                    out.push('H');
                }
            }
            'K' => {
                if !(i > 0 && at(i - 1) == 'C') {
                    out.push('K');
                }
            }
            'P' => {
                if at(i + 1) == 'H' {
                    out.push('F');
                    i += 1;
                } else {
                    out.push('P');
                }
            }
            'Q' => out.push('K'),
            'S' => {
                if at(i + 1) == 'H' {
                    out.push('X');
                    i += 1;
                } else {
                    out.push('S');
                }
            }
            'T' => {
                if at(i + 1) == 'H' {
                    out.push('0'); // theta
                    i += 1;
                } else {
                    out.push('T');
                }
            }
            'V' => out.push('F'),
            'W' | 'Y' => {
                if is_vowel(at(i + 1)) {
                    out.push(c);
                }
            }
            'X' => out.push_str("KS"),
            'Z' => out.push('S'),
            other => out.push(other), // B F J L M N R handled implicitly
        }
        i += 1;
    }
    Some(out)
}

/// Phonetic token-set similarity: Jaccard over Soundex codes of the words
/// (1.0 when both sides are empty of encodable words).
pub fn soundex_jaccard(a: &str, b: &str) -> f64 {
    let codes = |s: &str| -> Vec<String> { s.split_whitespace().filter_map(soundex).collect() };
    crate::sim::jaccard(&codes(a), &codes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundex_classic_vectors() {
        for (word, code) in [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
            ("Smith", "S530"),
            ("Smyth", "S530"),
        ] {
            assert_eq!(soundex(word).as_deref(), Some(code), "soundex({word})");
        }
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex(""), None);
    }

    #[test]
    fn metaphone_merges_homophones() {
        let pairs = [
            ("Catherine", "Katherine"),
            ("Philip", "Filip"),
            ("Knight", "Night"),
            ("Shawn", "Shaun"),
        ];
        for (a, b) in pairs {
            assert_eq!(metaphone(a), metaphone(b), "metaphone({a}) vs ({b})");
        }
        // …but distinguishes genuinely different names.
        assert_ne!(metaphone("Smith"), metaphone("Jones"));
    }

    #[test]
    fn phonetic_jaccard() {
        assert_eq!(soundex_jaccard("robert smith", "rupert smyth"), 1.0);
        assert!(soundex_jaccard("robert smith", "elena garcia") < 0.5);
    }
}
