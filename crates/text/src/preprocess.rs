//! Text pre-processing steps (axis 1 of the utility library).

use serde::{Deserialize, Serialize};

/// One pre-processing step. Steps compose left-to-right via
/// [`apply_pipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Preprocess {
    /// ASCII + Unicode lowercasing.
    Lowercase,
    /// Replace punctuation/symbol characters with spaces.
    StripPunctuation,
    /// Collapse runs of whitespace into single spaces and trim.
    NormalizeWhitespace,
    /// Fold common accented Latin characters to ASCII (`é` → `e`).
    FoldAccents,
    /// Porter-stem every whitespace-separated token.
    Stem,
    /// Normalise numbers: strip thousands separators and currency signs
    /// (`"$1,299.00"` → `"1299.00"`).
    NormalizeNumbers,
    /// Remove English stop words (`the`, `of`, …). Case-sensitive on
    /// lowercase input — run [`Preprocess::Lowercase`] first.
    RemoveStopwords,
}

impl Preprocess {
    /// Apply this step to `input`.
    pub fn apply(&self, input: &str) -> String {
        match self {
            Preprocess::Lowercase => input.to_lowercase(),
            Preprocess::StripPunctuation => strip_punctuation(input),
            Preprocess::NormalizeWhitespace => normalize_whitespace(input),
            Preprocess::FoldAccents => fold_accents(input),
            Preprocess::Stem => stem_tokens(input),
            Preprocess::NormalizeNumbers => normalize_numbers(input),
            Preprocess::RemoveStopwords => remove_stopwords(input),
        }
    }

    /// Short stable name used in auto-generated LF descriptions.
    pub fn name(&self) -> &'static str {
        match self {
            Preprocess::Lowercase => "lower",
            Preprocess::StripPunctuation => "nopunct",
            Preprocess::NormalizeWhitespace => "ws",
            Preprocess::FoldAccents => "ascii",
            Preprocess::Stem => "stem",
            Preprocess::NormalizeNumbers => "num",
            Preprocess::RemoveStopwords => "nostop",
        }
    }
}

/// Apply a pipeline of steps left-to-right.
pub fn apply_pipeline(steps: &[Preprocess], input: &str) -> String {
    let mut s = input.to_string();
    for step in steps {
        s = step.apply(&s);
    }
    s
}

/// The standard cleaning pipeline most LFs start from: lowercase, fold
/// accents, strip punctuation, normalise whitespace.
pub fn standard_pipeline() -> Vec<Preprocess> {
    vec![
        Preprocess::Lowercase,
        Preprocess::FoldAccents,
        Preprocess::StripPunctuation,
        Preprocess::NormalizeWhitespace,
    ]
}

fn strip_punctuation(input: &str) -> String {
    input
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c.is_whitespace() {
                c
            } else {
                ' '
            }
        })
        .collect()
}

fn normalize_whitespace(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut in_space = true; // leading whitespace is trimmed
    for c in input.chars() {
        if c.is_whitespace() {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(c);
            in_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Fold the accented Latin-1/Latin-Extended characters that actually occur
/// in EM benchmarks (author names, European product data). Characters
/// outside the table pass through unchanged.
fn fold_accents(input: &str) -> String {
    input
        .chars()
        .map(|c| match c {
            'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' => 'a',
            'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' | 'Ā' => 'A',
            'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ě' => 'e',
            'È' | 'É' | 'Ê' | 'Ë' => 'E',
            'ì' | 'í' | 'î' | 'ï' | 'ī' => 'i',
            'Ì' | 'Í' | 'Î' | 'Ï' => 'I',
            'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' => 'o',
            'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø' => 'O',
            'ù' | 'ú' | 'û' | 'ü' | 'ū' => 'u',
            'Ù' | 'Ú' | 'Û' | 'Ü' => 'U',
            'ç' | 'ć' | 'č' => 'c',
            'Ç' | 'Ć' | 'Č' => 'C',
            'ñ' | 'ń' => 'n',
            'Ñ' => 'N',
            'ý' | 'ÿ' => 'y',
            'š' | 'ś' => 's',
            'ž' | 'ź' | 'ż' => 'z',
            'ł' => 'l',
            'đ' => 'd',
            'ß' => 's', // approximate; "ss" would change char counts
            other => other,
        })
        .collect()
}

fn stem_tokens(input: &str) -> String {
    input
        .split_whitespace()
        .map(crate::stem::porter_stem)
        .collect::<Vec<_>>()
        .join(" ")
}

fn normalize_numbers(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '$' | '€' | '£' => {
                // Drop currency signs adjacent to digits entirely.
                i += 1;
            }
            ',' if i > 0
                && chars[i - 1].is_ascii_digit()
                && i + 1 < chars.len()
                && chars[i + 1].is_ascii_digit() =>
            {
                // Thousands separator inside a number.
                i += 1;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// The stop-word list: the classic short English list that matters for
/// product names and bibliographic titles.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "that", "the", "to", "was", "were", "will", "with",
];

fn remove_stopwords(input: &str) -> String {
    input
        .split_whitespace()
        .filter(|t| !STOPWORDS.contains(t))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase() {
        assert_eq!(Preprocess::Lowercase.apply("Sony BRAVIA"), "sony bravia");
    }

    #[test]
    fn strip_punct_keeps_alnum() {
        assert_eq!(
            Preprocess::StripPunctuation.apply("sony-bravia (40')"),
            "sony bravia  40  "
        );
    }

    #[test]
    fn whitespace_normalisation() {
        assert_eq!(
            Preprocess::NormalizeWhitespace.apply("  a \t b\n\nc  "),
            "a b c"
        );
        assert_eq!(Preprocess::NormalizeWhitespace.apply(""), "");
        assert_eq!(Preprocess::NormalizeWhitespace.apply("   "), "");
    }

    #[test]
    fn accent_folding() {
        assert_eq!(Preprocess::FoldAccents.apply("café Müller"), "cafe Muller");
        assert_eq!(Preprocess::FoldAccents.apply("日本"), "日本");
    }

    #[test]
    fn number_normalisation() {
        assert_eq!(
            Preprocess::NormalizeNumbers.apply("$1,299.00 and €45"),
            "1299.00 and 45"
        );
        // A comma that is not a thousands separator survives.
        assert_eq!(Preprocess::NormalizeNumbers.apply("a, b"), "a, b");
    }

    #[test]
    fn stopword_removal() {
        assert_eq!(
            Preprocess::RemoveStopwords.apply("the price of the tv"),
            "price tv"
        );
    }

    #[test]
    fn pipeline_composes_in_order() {
        let steps = standard_pipeline();
        assert_eq!(
            apply_pipeline(&steps, "  Café-Crème,  Deluxe! "),
            "cafe creme deluxe"
        );
    }

    #[test]
    fn stemming_applies_per_token() {
        assert_eq!(
            Preprocess::Stem.apply("connected connections"),
            "connect connect"
        );
    }
}
