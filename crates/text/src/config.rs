//! Similarity configurations: one choice along each of the four axes.
//!
//! A [`SimilarityConfig`] is the unit Auto-FuzzyJoin enumerates when
//! generating LFs automatically (paper §2.1, feature 1.3): *preprocessing ×
//! tokenization × weighting × distance function*, to which a threshold is
//! later attached. It is also the engine behind similarity-threshold LFs
//! users write by hand.

use crate::prepared::PreparedRef;
use crate::preprocess::{apply_pipeline, Preprocess};
use crate::sim;
use crate::tokenize::Tokenizer;
use crate::weight::{tf_weights, tfidf_weights, uniform_weights, CorpusStats, SortedWeights};
use serde::{Deserialize, Serialize};

/// Token weighting scheme (axis 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weighting {
    /// Every distinct token counts 1.
    Uniform,
    /// Term frequency within the string.
    Tf,
    /// TF × corpus IDF (requires [`CorpusStats`]; falls back to TF when
    /// none are provided).
    TfIdf,
}

impl Weighting {
    /// Short stable name used in auto-generated LF descriptions.
    pub fn name(&self) -> &'static str {
        match self {
            Weighting::Uniform => "uniform",
            Weighting::Tf => "tf",
            Weighting::TfIdf => "tfidf",
        }
    }
}

/// Similarity measure (axis 4). Set measures respect the weighting; string
/// measures operate on the preprocessed string and ignore
/// tokenizer/weighting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Measure {
    /// Jaccard over weighted token sets.
    Jaccard,
    /// Cosine over weighted token vectors.
    Cosine,
    /// Dice over (unweighted) token sets.
    Dice,
    /// Overlap coefficient over (unweighted) token sets.
    Overlap,
    /// Normalised Levenshtein similarity on the whole string.
    Levenshtein,
    /// Jaro-Winkler on the whole string.
    JaroWinkler,
    /// Symmetrised Monge-Elkan with Jaro-Winkler inner similarity.
    MongeElkan,
}

impl Measure {
    /// Short stable name used in auto-generated LF descriptions.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Jaccard => "jaccard",
            Measure::Cosine => "cosine",
            Measure::Dice => "dice",
            Measure::Overlap => "overlap",
            Measure::Levenshtein => "lev",
            Measure::JaroWinkler => "jw",
            Measure::MongeElkan => "me",
        }
    }

    /// Is this a token-set measure (i.e. does it use the tokenizer)?
    pub fn is_set_measure(&self) -> bool {
        matches!(
            self,
            Measure::Jaccard
                | Measure::Cosine
                | Measure::Dice
                | Measure::Overlap
                | Measure::MongeElkan
        )
    }
}

/// One point in the four-axis configuration space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Pre-processing pipeline (axis 1).
    pub preprocess: Vec<Preprocess>,
    /// Tokenizer (axis 2).
    pub tokenizer: Tokenizer,
    /// Token weighting (axis 3).
    pub weighting: Weighting,
    /// Similarity measure (axis 4).
    pub measure: Measure,
}

impl SimilarityConfig {
    /// The workhorse default: lowercase+clean, whitespace tokens, uniform
    /// weights, Jaccard — the measure behind the paper's `name_overlap`.
    pub fn default_jaccard() -> Self {
        SimilarityConfig {
            preprocess: crate::preprocess::standard_pipeline(),
            tokenizer: Tokenizer::Whitespace,
            weighting: Weighting::Uniform,
            measure: Measure::Jaccard,
        }
    }

    /// A human-readable identifier such as
    /// `"lower+nopunct|space|uniform|jaccard"` — stable across runs, used
    /// to name auto-generated LFs.
    pub fn id(&self) -> String {
        let pp: Vec<&str> = self.preprocess.iter().map(|p| p.name()).collect();
        format!(
            "{}|{}|{}|{}",
            if pp.is_empty() {
                "raw".to_string()
            } else {
                pp.join("+")
            },
            self.tokenizer.name(),
            self.weighting.name(),
            self.measure.name()
        )
    }

    /// Preprocess + tokenize one string.
    pub fn tokens(&self, input: &str) -> Vec<String> {
        let cleaned = apply_pipeline(&self.preprocess, input);
        self.tokenizer.tokens(&cleaned)
    }

    /// Score a pair of strings in `[0,1]`. `stats` supplies corpus IDF for
    /// [`Weighting::TfIdf`]; pass `None` to fall back to TF.
    pub fn score(&self, a: &str, b: &str, stats: Option<&CorpusStats>) -> f64 {
        match self.measure {
            Measure::Levenshtein => {
                let ca = apply_pipeline(&self.preprocess, a);
                let cb = apply_pipeline(&self.preprocess, b);
                sim::levenshtein_similarity(&ca, &cb)
            }
            Measure::JaroWinkler => {
                let ca = apply_pipeline(&self.preprocess, a);
                let cb = apply_pipeline(&self.preprocess, b);
                sim::jaro_winkler(&ca, &cb)
            }
            Measure::MongeElkan => {
                let ta = self.tokens(a);
                let tb = self.tokens(b);
                sim::monge_elkan_sym(&ta, &tb, sim::jaro_winkler)
            }
            Measure::Dice => {
                let (ta, tb) = (self.tokens(a), self.tokens(b));
                sim::dice(&ta, &tb)
            }
            Measure::Overlap => {
                let (ta, tb) = (self.tokens(a), self.tokens(b));
                sim::overlap_coefficient(&ta, &tb)
            }
            Measure::Jaccard | Measure::Cosine => {
                let (ta, tb) = (self.tokens(a), self.tokens(b));
                let build = |toks: &[String]| {
                    SortedWeights::from_weighted(&match (self.weighting, stats) {
                        (Weighting::Uniform, _) => uniform_weights(toks),
                        (Weighting::Tf, _) | (Weighting::TfIdf, None) => tf_weights(toks),
                        (Weighting::TfIdf, Some(s)) => tfidf_weights(toks, s),
                    })
                };
                let (wa, wb) = (build(&ta), build(&tb));
                match self.measure {
                    Measure::Jaccard => sim::weighted_jaccard_sorted(&wa, &wb),
                    _ => sim::weighted_cosine_sorted(&wa, &wb),
                }
            }
        }
    }

    /// Three-way threshold decision for an LF vote: `Greater` when
    /// `score(a, b) > upper`, `Less` when `score(a, b) < lower`, `Equal`
    /// (abstain) otherwise.
    ///
    /// Exactly equivalent to calling [`SimilarityConfig::score`] and
    /// comparing — same float expressions, same NaN behaviour — but
    /// [`Measure::Levenshtein`] is decided through the banded DP: only
    /// edit distances that could still keep the score at or above `lower`
    /// are explored, and a length gap beyond the band exits in O(1).
    /// Thresholded callers (similarity LFs vote on every candidate pair)
    /// should use this instead of scoring then comparing.
    pub fn classify_thresholds(
        &self,
        a: &str,
        b: &str,
        stats: Option<&CorpusStats>,
        upper: f64,
        lower: f64,
    ) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let cmp = |s: f64| {
            if s > upper {
                Ordering::Greater
            } else if s < lower {
                Ordering::Less
            } else {
                Ordering::Equal
            }
        };
        if self.measure != Measure::Levenshtein {
            return cmp(self.score(a, b, stats));
        }
        let ca = apply_pipeline(&self.preprocess, a);
        let cb = apply_pipeline(&self.preprocess, b);
        let la = ca.chars().count();
        let lb = cb.chars().count();
        if la == 0 && lb == 0 {
            return cmp(1.0);
        }
        if lower.is_nan() {
            // `s < NaN` never holds, so only the upper bound matters.
            return if sim::levenshtein_similarity_exceeds(&ca, &cb, upper) {
                Ordering::Greater
            } else {
                Ordering::Equal
            };
        }
        let maxlen = la.max(lb);
        let sim_of = |d: usize| 1.0 - d as f64 / maxlen as f64;
        // A distance is worth resolving exactly while it could still vote
        // Greater (`s > upper` wins even when the thresholds are inverted
        // and `s < lower` also holds) or keep the vote out of NonMatch
        // (`s >= lower`). Beyond both, the vote is Less no matter what.
        let relevant = |d: usize| {
            let s = sim_of(d);
            s >= lower || s > upper
        };
        if !relevant(0) {
            return Ordering::Less; // even identical strings fall below
        }
        let (mut lo, mut hi) = (0usize, maxlen);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if relevant(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        match sim::levenshtein_bounded(&ca, &cb, lo) {
            Some(d) => cmp(sim_of(d)),
            None => Ordering::Less,
        }
    }

    /// Score a pair from already-prepared per-record data (see
    /// [`crate::prepared`]). Semantics match [`SimilarityConfig::score`]
    /// exactly: string measures read the preprocessed text, set measures
    /// the token vectors, weighted measures the attached weight vectors
    /// (falling back to building weights from the tokens when a ref
    /// carries none — TF-IDF without weights degrades to TF, like `score`
    /// without stats).
    pub fn score_prepared(&self, a: &PreparedRef<'_>, b: &PreparedRef<'_>) -> f64 {
        match self.measure {
            Measure::Levenshtein => sim::levenshtein_similarity(a.cleaned, b.cleaned),
            Measure::JaroWinkler => sim::jaro_winkler(a.cleaned, b.cleaned),
            Measure::MongeElkan => sim::monge_elkan_sym(a.tokens, b.tokens, sim::jaro_winkler),
            Measure::Dice => sim::dice_sorted(a.hashes, b.hashes),
            Measure::Overlap => sim::overlap_sorted(a.hashes, b.hashes),
            Measure::Jaccard | Measure::Cosine => {
                let result = |wa: &SortedWeights, wb: &SortedWeights| match self.measure {
                    Measure::Jaccard => sim::weighted_jaccard_sorted(wa, wb),
                    _ => sim::weighted_cosine_sorted(wa, wb),
                };
                match (a.weights, b.weights) {
                    (Some(wa), Some(wb)) => result(wa, wb),
                    _ => {
                        let build = |toks: &[String]| {
                            SortedWeights::from_weighted(&match self.weighting {
                                Weighting::Uniform => uniform_weights(toks),
                                Weighting::Tf | Weighting::TfIdf => tf_weights(toks),
                            })
                        };
                        result(&build(a.tokens), &build(b.tokens))
                    }
                }
            }
        }
    }
}

/// The default enumeration grid for Auto-FuzzyJoin: a compact cross product
/// of sensible choices along each axis (40 configurations).
pub fn default_config_grid() -> Vec<SimilarityConfig> {
    let pipelines: Vec<Vec<Preprocess>> = vec![
        vec![Preprocess::Lowercase, Preprocess::NormalizeWhitespace],
        vec![
            Preprocess::Lowercase,
            Preprocess::StripPunctuation,
            Preprocess::NormalizeWhitespace,
        ],
        vec![
            Preprocess::Lowercase,
            Preprocess::StripPunctuation,
            Preprocess::Stem,
            Preprocess::NormalizeWhitespace,
        ],
    ];
    let tokenizers = [Tokenizer::Whitespace, Tokenizer::QGram(3)];
    let weightings = [Weighting::Uniform, Weighting::TfIdf];
    let set_measures = [Measure::Jaccard, Measure::Cosine];
    let string_measures = [Measure::JaroWinkler, Measure::Levenshtein];

    let mut out = Vec::new();
    for pp in &pipelines {
        for tk in tokenizers {
            for w in weightings {
                for m in set_measures {
                    out.push(SimilarityConfig {
                        preprocess: pp.clone(),
                        tokenizer: tk,
                        weighting: w,
                        measure: m,
                    });
                }
            }
        }
        for m in string_measures {
            out.push(SimilarityConfig {
                preprocess: pp.clone(),
                tokenizer: Tokenizer::Whitespace,
                weighting: Weighting::Uniform,
                measure: m,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_jaccard_matches_paper_lf_semantics() {
        // The paper's name_overlap: token overlap of the name attribute.
        let cfg = SimilarityConfig::default_jaccard();
        let s = cfg.score(
            "Sony Bravia 40' LCD TV",
            "sony bravia 40 lcd television",
            None,
        );
        assert!(s > 0.6, "near-identical names score high: {s}");
        let d = cfg.score("Sony Bravia 40' LCD TV", "Canon PowerShot camera", None);
        assert!(d < 0.1, "unrelated names score low: {d}");
    }

    #[test]
    fn ids_are_unique_across_the_grid() {
        let grid = default_config_grid();
        let mut ids: Vec<String> = grid.iter().map(|c| c.id()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "config ids must be unique");
        assert!(n >= 30, "grid should be reasonably large, got {n}");
    }

    #[test]
    fn tfidf_downweights_common_tokens() {
        let mut stats = CorpusStats::new();
        for _ in 0..50 {
            stats.add_document(&["tv", "lcd"]);
        }
        stats.add_document(&["kdl40", "tv"]);
        stats.add_document(&["xbr9", "tv"]);
        let cfg = SimilarityConfig {
            preprocess: vec![Preprocess::Lowercase],
            tokenizer: Tokenizer::Whitespace,
            weighting: Weighting::TfIdf,
            measure: Measure::Jaccard,
        };
        // Shares only the ubiquitous "tv" token.
        let common = cfg.score("kdl40 tv", "xbr9 tv", Some(&stats));
        // Shares the rare model token.
        let rare = cfg.score("kdl40 tv", "kdl40 lcd", Some(&stats));
        assert!(
            rare > common,
            "rare overlap {rare} should beat common {common}"
        );
    }

    #[test]
    fn string_measures_ignore_tokenizer() {
        let a = SimilarityConfig {
            preprocess: vec![Preprocess::Lowercase],
            tokenizer: Tokenizer::Whitespace,
            weighting: Weighting::Uniform,
            measure: Measure::JaroWinkler,
        };
        let b = SimilarityConfig {
            tokenizer: Tokenizer::QGram(3),
            ..a.clone()
        };
        assert_eq!(a.score("abc", "abd", None), b.score("abc", "abd", None));
    }

    proptest! {
        /// `classify_thresholds` is exactly "score, then compare" for
        /// every measure in the grid — in particular the banded
        /// Levenshtein path must reproduce the full-DP vote bit for bit.
        #[test]
        fn classify_thresholds_matches_score_comparison(
            a in "[a-cé ]{0,10}",
            b in "[a-cé ]{0,10}",
            idx in 0usize..36,
            upper in 0.0f64..1.2,
            lower in -0.2f64..1.0,
        ) {
            use std::cmp::Ordering;
            let grid = default_config_grid();
            let cfg = &grid[idx % grid.len()];
            let s = cfg.score(&a, &b, None);
            let expected = if s > upper {
                Ordering::Greater
            } else if s < lower {
                Ordering::Less
            } else {
                Ordering::Equal
            };
            prop_assert_eq!(
                cfg.classify_thresholds(&a, &b, None, upper, lower),
                expected,
                "{} s={} upper={} lower={}", cfg.id(), s, upper, lower
            );
        }

        /// Every config in the grid returns a score in [0,1], symmetric,
        /// and 1.0 for identical strings.
        #[test]
        fn grid_score_invariants(
            a in "[a-c ]{0,12}",
            b in "[a-c ]{0,12}",
            idx in 0usize..36,
        ) {
            let grid = default_config_grid();
            let cfg = &grid[idx % grid.len()];
            let s = cfg.score(&a, &b, None);
            prop_assert!((0.0..=1.0).contains(&s), "score {s} for {}", cfg.id());
            let s2 = cfg.score(&b, &a, None);
            prop_assert!((s - s2).abs() < 1e-9, "symmetry for {}", cfg.id());
            let eq = cfg.score(&a, &a, None);
            prop_assert!((eq - 1.0).abs() < 1e-9, "identity for {}", cfg.id());
        }
    }
}
