//! Token weighting (axis 3 of the utility library).
//!
//! Rare tokens ("KDL-40V2500") identify products; frequent tokens ("tv",
//! "black") don't. TF-IDF weighting makes overlap measures pay attention to
//! the former. [`CorpusStats`] accumulates document frequencies over one or
//! both input tables and hands out per-token IDF weights.

use std::collections::HashMap;

/// Corpus-level document-frequency statistics for TF-IDF weighting.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    doc_freq: HashMap<String, u32>,
    n_docs: u32,
}

impl CorpusStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document's token multiset (duplicates within the document
    /// count once, as usual for document frequency).
    pub fn add_document<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.n_docs += 1;
        let mut seen: Vec<&str> = Vec::with_capacity(tokens.len());
        for t in tokens {
            let t = t.as_ref();
            if !seen.contains(&t) {
                seen.push(t);
                *self.doc_freq.entry(t.to_string()).or_insert(0) += 1;
            }
        }
    }

    /// Number of documents added.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Document frequency of a token.
    pub fn doc_freq(&self, token: &str) -> u32 {
        self.doc_freq.get(token).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency:
    /// `idf(t) = ln(1 + N / (1 + df(t)))`.
    ///
    /// Smoothing keeps unseen tokens finite and strictly positive, so
    /// weighted measures degrade gracefully on out-of-corpus tokens.
    pub fn idf(&self, token: &str) -> f64 {
        let n = self.n_docs.max(1) as f64;
        let df = self.doc_freq(token) as f64;
        (1.0 + n / (1.0 + df)).ln()
    }

    /// Distinct tokens seen.
    pub fn vocabulary_size(&self) -> usize {
        self.doc_freq.len()
    }
}

/// A weighted token vector: token → weight (weights ≥ 0).
pub type WeightedTokens = HashMap<String, f64>;

/// Build a uniform-weight vector (every distinct token weight 1).
pub fn uniform_weights<S: AsRef<str>>(tokens: &[S]) -> WeightedTokens {
    let mut out = WeightedTokens::with_capacity(tokens.len());
    for t in tokens {
        out.insert(t.as_ref().to_string(), 1.0);
    }
    out
}

/// Build a term-frequency vector (token count within the input).
pub fn tf_weights<S: AsRef<str>>(tokens: &[S]) -> WeightedTokens {
    let mut out = WeightedTokens::with_capacity(tokens.len());
    for t in tokens {
        *out.entry(t.as_ref().to_string()).or_insert(0.0) += 1.0;
    }
    out
}

/// Build a TF-IDF vector against corpus statistics.
pub fn tfidf_weights<S: AsRef<str>>(tokens: &[S], stats: &CorpusStats) -> WeightedTokens {
    let mut out = tf_weights(tokens);
    for (tok, w) in out.iter_mut() {
        *w *= stats.idf(tok);
    }
    out
}

/// A weighted token vector in scoring form: `(token_hash, weight)` entries
/// sorted by hash, plus the precomputed L2 norm. This is what the
/// merge-walk kernels ([`crate::sim::weighted_jaccard_sorted`],
/// [`crate::sim::weighted_cosine_sorted`]) consume — no hashing, no map
/// lookups, and a summation order fixed once at build time, so scores are
/// bit-stable across runs (a `HashMap`'s iteration order is not).
///
/// Hash collisions merge the colliding tokens into one entry whose weight
/// is the **sum** of theirs (total mass is preserved); entries with equal
/// hashes are summed in ascending weight order so even that case is
/// deterministic. See the collision notes on
/// [`crate::sim::sorted_token_hashes`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SortedWeights {
    entries: Vec<(u64, f64)>,
    norm: f64,
}

impl SortedWeights {
    /// Convert a token→weight map (hashes the keys, sorts, merges).
    pub fn from_weighted(w: &WeightedTokens) -> Self {
        Self::from_hashed_entries(
            w.iter()
                .map(|(t, &wt)| (crate::sim::token_hash(t), wt))
                .collect(),
        )
    }

    /// Build from already-hashed `(hash, weight)` entries in any order.
    /// Entries sharing a hash are merged by summing their weights.
    pub fn from_hashed_entries(mut entries: Vec<(u64, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(h, w)| (h, w.to_bits()));
        let mut merged: Vec<(u64, f64)> = Vec::with_capacity(entries.len());
        for (h, w) in entries {
            match merged.last_mut() {
                Some((ph, pw)) if *ph == h => *pw += w,
                _ => merged.push((h, w)),
            }
        }
        let norm = merged.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        SortedWeights {
            entries: merged,
            norm,
        }
    }

    /// The sorted `(hash, weight)` entries.
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.entries
    }

    /// Precomputed L2 norm of the weight vector.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Number of distinct (post-merge) tokens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let mut s = CorpusStats::new();
        s.add_document(&["tv", "tv", "sony"]);
        s.add_document(&["tv", "lg"]);
        assert_eq!(s.n_docs(), 2);
        assert_eq!(s.doc_freq("tv"), 2);
        assert_eq!(s.doc_freq("sony"), 1);
        assert_eq!(s.doc_freq("nope"), 0);
        assert_eq!(s.vocabulary_size(), 3);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let mut s = CorpusStats::new();
        for _ in 0..99 {
            s.add_document(&["tv"]);
        }
        s.add_document(&["tv", "kdl40v2500"]);
        assert!(s.idf("kdl40v2500") > s.idf("tv"));
        // Unseen tokens get the highest weight of all.
        assert!(s.idf("unseen") >= s.idf("kdl40v2500"));
        assert!(s.idf("tv") > 0.0);
    }

    #[test]
    fn weight_builders() {
        let toks = ["a", "b", "a"];
        let u = uniform_weights(&toks);
        assert_eq!(u["a"], 1.0);
        let tf = tf_weights(&toks);
        assert_eq!(tf["a"], 2.0);
        assert_eq!(tf["b"], 1.0);

        let mut s = CorpusStats::new();
        s.add_document(&["a"]);
        s.add_document(&["a", "b"]);
        let ti = tfidf_weights(&toks, &s);
        assert!(ti["a"] < ti["b"] * 2.0 + 1e-12); // b rarer → higher idf
    }

    #[test]
    fn idf_on_empty_corpus_is_finite() {
        let s = CorpusStats::new();
        assert!(s.idf("x").is_finite());
        assert!(s.idf("x") > 0.0);
    }
}
