//! Tokenizers (axis 2 of the utility library).

use serde::{Deserialize, Serialize};

/// A tokenization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tokenizer {
    /// Split on runs of whitespace.
    Whitespace,
    /// Split on runs of non-alphanumeric characters (so `"wi-fi"` →
    /// `["wi", "fi"]`).
    Alnum,
    /// Character q-grams of the given width over the padded string
    /// (`QGram(3)` on `"tv"` → `"##tv##"` 3-grams). Padding makes short
    /// strings comparable and weights boundaries.
    QGram(usize),
    /// Sliding word n-grams over whitespace tokens (`WordNGram(2)` on
    /// `"sony bravia tv"` → `["sony bravia", "bravia tv"]`).
    WordNGram(usize),
}

impl Tokenizer {
    /// Tokenize `input`. Never returns empty *tokens*; may return an empty
    /// *vector* for empty/degenerate input.
    pub fn tokens(&self, input: &str) -> Vec<String> {
        match self {
            Tokenizer::Whitespace => input.split_whitespace().map(str::to_string).collect(),
            Tokenizer::Alnum => input
                .split(|c: char| !c.is_alphanumeric())
                .filter(|t| !t.is_empty())
                .map(str::to_string)
                .collect(),
            Tokenizer::QGram(q) => qgrams(input, *q),
            Tokenizer::WordNGram(n) => {
                let words: Vec<&str> = input.split_whitespace().collect();
                let n = (*n).max(1);
                if words.len() < n {
                    // Shorter inputs yield the whole string as one token so
                    // that "sony" vs "sony" still overlaps under WordNGram(2).
                    return if words.is_empty() {
                        vec![]
                    } else {
                        vec![words.join(" ")]
                    };
                }
                words.windows(n).map(|w| w.join(" ")).collect()
            }
        }
    }

    /// Short stable name used in auto-generated LF descriptions.
    pub fn name(&self) -> String {
        match self {
            Tokenizer::Whitespace => "space".to_string(),
            Tokenizer::Alnum => "alnum".to_string(),
            Tokenizer::QGram(q) => format!("{q}gram"),
            Tokenizer::WordNGram(n) => format!("word{n}gram"),
        }
    }
}

/// Character q-grams over `#`-padded input. Empty input → no grams.
fn qgrams(input: &str, q: usize) -> Vec<String> {
    let q = q.max(1);
    if input.is_empty() {
        return vec![];
    }
    let mut padded: Vec<char> = vec!['#'; q - 1];
    padded.reserve(input.chars().count() + (q - 1));
    padded.extend(input.chars());
    padded.extend(std::iter::repeat_n('#', q - 1));
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_tokens() {
        assert_eq!(
            Tokenizer::Whitespace.tokens("sony  bravia tv"),
            vec!["sony", "bravia", "tv"]
        );
        assert!(Tokenizer::Whitespace.tokens("   ").is_empty());
    }

    #[test]
    fn alnum_splits_punctuation() {
        assert_eq!(
            Tokenizer::Alnum.tokens("wi-fi (2.4GHz)"),
            vec!["wi", "fi", "2", "4GHz"]
        );
    }

    #[test]
    fn qgrams_padded() {
        let grams = Tokenizer::QGram(3).tokens("tv");
        assert_eq!(grams, vec!["##t", "#tv", "tv#", "v##"]);
        assert!(Tokenizer::QGram(3).tokens("").is_empty());
    }

    #[test]
    fn qgram_width_one_is_chars() {
        assert_eq!(Tokenizer::QGram(1).tokens("abc"), vec!["a", "b", "c"]);
    }

    #[test]
    fn word_ngrams() {
        assert_eq!(
            Tokenizer::WordNGram(2).tokens("sony bravia tv"),
            vec!["sony bravia", "bravia tv"]
        );
        // Shorter than n: whole string.
        assert_eq!(Tokenizer::WordNGram(2).tokens("sony"), vec!["sony"]);
        assert!(Tokenizer::WordNGram(2).tokens("").is_empty());
    }

    #[test]
    fn unicode_qgrams_are_char_based() {
        let grams = Tokenizer::QGram(2).tokens("éa");
        assert_eq!(grams, vec!["#é", "éa", "a#"]);
    }
}
