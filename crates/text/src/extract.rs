//! Regex-based attribute extractors.
//!
//! These power "key attribute disagrees → non-match" LFs like the paper's
//! `size_unmatch` (Figure 2), which extracts product sizes such as `40'`
//! from names and descriptions and votes −1 when they differ.

use panda_regex::Regex;
use std::sync::OnceLock;

fn size_re() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    RE.get_or_init(|| {
        Regex::new_ci(r#"(\d+(?:\.\d+)?)\s*(?:''|'|"|-inch|inches|inch|-in\b|in\.|in\b)"#)
            .expect("size pattern compiles")
    })
}

fn number_re() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    RE.get_or_init(|| Regex::new(r"\d+(?:\.\d+)?").expect("number pattern compiles"))
}

fn price_re() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    RE.get_or_init(|| {
        Regex::new(r"[$€£]\s*(\d+(?:,\d{3})*(?:\.\d+)?)").expect("price pattern compiles")
    })
}

fn year_re() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    RE.get_or_init(|| Regex::new(r"\b(1[89]\d{2}|20\d{2})\b").expect("year pattern compiles"))
}

fn model_code_re() -> &'static Regex {
    static RE: OnceLock<Regex> = OnceLock::new();
    // Alphanumeric tokens that mix letters and digits, possibly hyphenated:
    // KDL-40V2500, X1000, 42PFL7403.
    RE.get_or_init(|| {
        Regex::new(r"\b[A-Za-z]+-?\d[\w-]*\b|\b\d+[A-Za-z][\w-]*\b")
            .expect("model pattern compiles")
    })
}

/// Extract all product sizes (in "inches-like" units) from text:
/// `"sony 40' tv"` → `[40.0]`.
pub fn sizes(text: &str) -> Vec<f64> {
    size_re()
        .captures_iter(text)
        .into_iter()
        .filter_map(|c| c.group_str(1).and_then(|s| s.parse().ok()))
        .collect()
}

/// Extract all bare numbers.
pub fn numbers(text: &str) -> Vec<f64> {
    number_re()
        .find_iter(text)
        .filter_map(|m| m.as_str().parse().ok())
        .collect()
}

/// Extract all prices (currency-sign prefixed amounts).
pub fn prices(text: &str) -> Vec<f64> {
    price_re()
        .captures_iter(text)
        .into_iter()
        .filter_map(|c| {
            c.group_str(1)
                .map(|s| s.replace(',', ""))
                .and_then(|s| s.parse().ok())
        })
        .collect()
}

/// Extract all plausible years (1800–2099).
pub fn years(text: &str) -> Vec<u32> {
    year_re()
        .captures_iter(text)
        .into_iter()
        .filter_map(|c| c.group_str(1).and_then(|s| s.parse().ok()))
        .collect()
}

/// Extract model-code-like tokens (mixed letters and digits), upper-cased
/// and hyphen-stripped for comparison: `"Sony KDL-40V2500"` →
/// `["KDL40V2500"]`.
pub fn model_codes(text: &str) -> Vec<String> {
    model_code_re()
        .find_iter(text)
        .map(|m| {
            m.as_str()
                .chars()
                .filter(|c| *c != '-')
                .collect::<String>()
                .to_uppercase()
        })
        .filter(|t| {
            t.chars().any(|c| c.is_ascii_digit()) && t.chars().any(|c| c.is_ascii_alphabetic())
        })
        .collect()
}

/// Do two size lists agree? `None` when either side has no size (abstain);
/// `Some(true)` when some size co-occurs on both sides.
pub fn sizes_agree(a: &str, b: &str) -> Option<bool> {
    let (sa, sb) = (sizes(a), sizes(b));
    if sa.is_empty() || sb.is_empty() {
        return None;
    }
    Some(sa.iter().any(|x| sb.iter().any(|y| (x - y).abs() < 1e-9)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_from_product_names() {
        assert_eq!(sizes("sony bravia 40' lcd"), vec![40.0]);
        assert_eq!(sizes("samsung 46\" led"), vec![46.0]);
        assert_eq!(sizes("panasonic 50-inch plasma"), vec![50.0]);
        assert_eq!(sizes("LG 21.5 inch monitor"), vec![21.5]);
        assert!(sizes("no size at all").is_empty());
    }

    #[test]
    fn size_agreement_tristate() {
        assert_eq!(sizes_agree("tv 40'", "tv 40 inch"), Some(true));
        assert_eq!(sizes_agree("tv 40'", "tv 46'"), Some(false));
        assert_eq!(sizes_agree("tv", "tv 46'"), None);
    }

    #[test]
    fn price_extraction() {
        assert_eq!(prices("now $1,299.00 (was $1,499)"), vec![1299.0, 1499.0]);
        assert_eq!(prices("€45.50"), vec![45.5]);
        assert!(prices("1299 dollars").is_empty()); // needs a sign
    }

    #[test]
    fn year_extraction() {
        assert_eq!(years("VLDB 2021 proceedings (est. 1975)"), vec![2021, 1975]);
        assert!(years("room 3000 sqft 12345").is_empty());
    }

    #[test]
    fn model_code_extraction() {
        assert_eq!(model_codes("Sony KDL-40V2500 Bravia"), vec!["KDL40V2500"]);
        assert_eq!(model_codes("Philips 42PFL7403 hdtv"), vec!["42PFL7403"]);
        assert!(model_codes("plain words only").is_empty());
        // Bare numbers are not model codes.
        assert!(model_codes("item 12345").is_empty());
    }

    #[test]
    fn numbers_extraction() {
        assert_eq!(numbers("2 x 4.5 kg"), vec![2.0, 4.5]);
    }
}
