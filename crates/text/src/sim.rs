//! Similarity functions (axis 4 of the utility library).
//!
//! Every function returns a similarity in `[0, 1]` (1 = identical), so
//! thresholds compose uniformly. Token-set measures take token slices;
//! weighted measures take [`WeightedTokens`] maps; string measures take
//! `&str`.

use crate::weight::{SortedWeights, WeightedTokens};

// ---------------------------------------------------------------------------
// Token hashing
// ---------------------------------------------------------------------------
//
// Token-set measures only need *identity* between tokens, never their
// content, so sets are represented as sorted, deduplicated `u64` FNV-1a
// hash arrays. Sort+dedup gives exactly `HashSet` semantics modulo hash
// collisions: two distinct tokens with equal hashes **merge into one set
// element** (never a panic, never a broken sort invariant), shifting set
// cardinalities by at most the number of colliding pairs. At 64 bits a
// collision within one attribute's vocabulary is a ~2^-64-per-pair event,
// so the drift is theoretical; the forced-collision tests below pin the
// merge behaviour down anyway.

/// FNV-1a 64-bit hash of one token. Stable across runs and platforms (pure
/// function of the bytes), which keeps every downstream artifact that
/// hashes tokens — prepared columns, cached weight vectors — deterministic.
#[inline]
pub fn token_hash(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in token.as_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash every token and normalise to set form: sorted ascending, no
/// duplicates. The output is what the `*_sorted` kernels consume.
pub fn sorted_token_hashes<S: AsRef<str>>(tokens: &[S]) -> Vec<u64> {
    let mut out: Vec<u64> = tokens.iter().map(|t| token_hash(t.as_ref())).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// `|A∩B|` of two sorted deduplicated hash arrays, by merge walk.
#[inline]
fn sorted_intersection_len(a: &[u64], b: &[u64]) -> usize {
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        inter += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    inter
}

// ---------------------------------------------------------------------------
// Token-set measures
// ---------------------------------------------------------------------------

/// Jaccard `|A∩B| / |A∪B|` over sorted deduplicated hash arrays (see
/// [`sorted_token_hashes`]). Two empty sets are identical (1).
pub fn jaccard_sorted(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = sorted_intersection_len(a, b) as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)` over sorted hash arrays.
pub fn overlap_sorted(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let denom = a.len().min(b.len()) as f64;
    if denom == 0.0 {
        return 0.0;
    }
    sorted_intersection_len(a, b) as f64 / denom
}

/// Dice coefficient `2|A∩B| / (|A|+|B|)` over sorted hash arrays.
pub fn dice_sorted(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    2.0 * sorted_intersection_len(a, b) as f64 / (a.len() + b.len()) as f64
}

/// Binary cosine `|A∩B| / sqrt(|A||B|)` over sorted hash arrays.
pub fn cosine_sorted(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let denom = ((a.len() * b.len()) as f64).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    sorted_intersection_len(a, b) as f64 / denom
}

/// Jaccard similarity `|A∩B| / |A∪B|`. Two empty sets are identical (1).
pub fn jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    jaccard_sorted(&sorted_token_hashes(a), &sorted_token_hashes(b))
}

/// Overlap coefficient `|A∩B| / min(|A|,|B|)`.
pub fn overlap_coefficient<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    overlap_sorted(&sorted_token_hashes(a), &sorted_token_hashes(b))
}

/// Dice coefficient `2|A∩B| / (|A|+|B|)`.
pub fn dice<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    dice_sorted(&sorted_token_hashes(a), &sorted_token_hashes(b))
}

/// Cosine similarity of the *binary* token-incidence vectors:
/// `|A∩B| / sqrt(|A||B|)`.
pub fn cosine_sets<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    cosine_sorted(&sorted_token_hashes(a), &sorted_token_hashes(b))
}

// ---------------------------------------------------------------------------
// Weighted measures
// ---------------------------------------------------------------------------

/// Weighted Jaccard `Σ min(w_a, w_b) / Σ max(w_a, w_b)`.
pub fn weighted_jaccard(a: &WeightedTokens, b: &WeightedTokens) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &wa) in a {
        let wb = b.get(t).copied().unwrap_or(0.0);
        num += wa.min(wb);
        den += wa.max(wb);
    }
    for (t, &wb) in b {
        if !a.contains_key(t) {
            den += wb;
        }
    }
    if den == 0.0 {
        return 1.0; // all-zero weights on both sides
    }
    num / den
}

/// Cosine similarity of weighted vectors (e.g. TF-IDF cosine).
pub fn weighted_cosine(a: &WeightedTokens, b: &WeightedTokens) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut dot = 0.0;
    for (t, &wa) in a {
        if let Some(&wb) = b.get(t) {
            dot += wa * wb;
        }
    }
    let na: f64 = a.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|w| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return if na == nb { 1.0 } else { 0.0 };
    }
    (dot / (na * nb)).clamp(0.0, 1.0)
}

/// Weighted Jaccard `Σ min(w_a, w_b) / Σ max(w_a, w_b)` over sorted weight
/// vectors — the merge-walk twin of [`weighted_jaccard`]. Unlike the
/// `HashMap` version, the accumulation order is fixed by the hash sort, so
/// the result is bit-stable across runs and vector instances.
pub fn weighted_jaccard_sorted(a: &SortedWeights, b: &SortedWeights) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (a, b) = (a.entries(), b.entries());
    let mut num = 0.0;
    let mut den = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (ha, wa) = a[i];
        let (hb, wb) = b[j];
        if ha == hb {
            num += wa.min(wb);
            den += wa.max(wb);
            i += 1;
            j += 1;
        } else if ha < hb {
            den += wa;
            i += 1;
        } else {
            den += wb;
            j += 1;
        }
    }
    den += a[i..].iter().map(|&(_, w)| w).sum::<f64>();
    den += b[j..].iter().map(|&(_, w)| w).sum::<f64>();
    if den == 0.0 {
        return 1.0; // all-zero weights on both sides
    }
    num / den
}

/// Cosine of sorted weight vectors — the merge-walk twin of
/// [`weighted_cosine`], with the same empty/zero-norm handling.
pub fn weighted_cosine_sorted(a: &SortedWeights, b: &SortedWeights) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (ea, eb) = (a.entries(), b.entries());
    let mut dot = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() && j < eb.len() {
        let (ha, wa) = ea[i];
        let (hb, wb) = eb[j];
        dot += if ha == hb { wa * wb } else { 0.0 };
        i += usize::from(ha <= hb);
        j += usize::from(hb <= ha);
    }
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return if na == nb { 1.0 } else { 0.0 };
    }
    (dot / (na * nb)).clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------------
// String (edit-based) measures
// ---------------------------------------------------------------------------

/// Levenshtein edit distance (unit costs), O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

/// [`levenshtein`] over already-collected char slices — lets callers that
/// need the char counts anyway (normalised similarity) collect once.
fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=a.len()).collect();
    let mut cur = vec![0usize; a.len() + 1];
    for (j, cb) in b.iter().enumerate() {
        cur[0] = j + 1;
        for (i, ca) in a.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[i + 1] = (prev[i] + cost).min(prev[i + 1] + 1).min(cur[i] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[a.len()]
}

/// Levenshtein with early exit: returns `None` when the distance exceeds
/// `max`. Banded: O((|a|+|b|)·max) time.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (a, b) = if a.len() < b.len() { (a, b) } else { (b, a) };
    if b.len() - a.len() > max {
        return None;
    }
    if a.is_empty() {
        return (b.len() <= max).then_some(b.len());
    }
    const BIG: usize = usize::MAX / 2;
    let mut prev = vec![BIG; a.len() + 1];
    let mut cur = vec![BIG; a.len() + 1];
    for (i, p) in prev.iter_mut().enumerate().take(max.min(a.len()) + 1) {
        *p = i;
    }
    for (j, cb) in b.iter().enumerate() {
        // Band over i: |i - j| ≤ max (chars beyond can't recover).
        let lo = j.saturating_sub(max);
        let hi = (j + max + 1).min(a.len());
        cur[0] = if j < max { j + 1 } else { BIG };
        if lo > 0 {
            cur[lo] = BIG;
        }
        let mut row_min = cur[0];
        for i in lo..hi {
            let cost = usize::from(a[i] != *cb);
            let v = (prev[i] + cost)
                .min(prev[i + 1].saturating_add(1))
                .min(cur[i].saturating_add(1));
            cur[i + 1] = v;
            row_min = row_min.min(v);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        for v in cur.iter_mut() {
            *v = BIG;
        }
    }
    let d = prev[a.len()];
    (d <= max).then_some(d)
}

/// Normalised Levenshtein similarity `1 − d / max(|a|,|b|)`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let maxlen = a.len().max(b.len());
    1.0 - levenshtein_chars(&a, &b) as f64 / maxlen as f64
}

/// Does `levenshtein_similarity(a, b) > threshold` hold? Decides the
/// comparison through the banded kernel instead of the full DP: the
/// largest edit distance `d_max` still satisfying the *exact* float
/// predicate `1 − d/maxlen > threshold` is found by binary search, and
/// [`levenshtein_bounded`] with that band answers in
/// O((|a|+|b|)·d_max) — with an O(1) early exit on a length gap — instead
/// of O(|a|·|b|). Exactly equivalent to computing the similarity and
/// comparing, including ties lost to float rounding.
pub fn levenshtein_similarity_exceeds(a: &str, b: &str, threshold: f64) -> bool {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la == 0 && lb == 0 {
        return 1.0 > threshold;
    }
    let maxlen = la.max(lb);
    let sim = |d: usize| 1.0 - d as f64 / maxlen as f64;
    if sim(0) <= threshold || threshold.is_nan() {
        return false; // even identical strings wouldn't clear it
    }
    // Largest d with sim(d) > threshold; sim is nonincreasing in d.
    let (mut lo, mut hi) = (0usize, maxlen); // invariant: sim(lo) passes
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if sim(mid) > threshold {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    levenshtein_bounded(a, b, lo).is_some()
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::with_capacity(a.len());
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                a_matched.push((i, j));
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: compare the matched chars of `a` (in a-order) with
    // the matched chars of `b` (in b-order); half the positions that
    // disagree.
    let a_seq: Vec<char> = a_matched.iter().map(|&(i, _)| a[i]).collect();
    let b_seq: Vec<char> = {
        let mut with_idx: Vec<(usize, char)> = a_matched.iter().map(|&(_, j)| (j, b[j])).collect();
        with_idx.sort_unstable_by_key(|&(j, _)| j);
        with_idx.into_iter().map(|(_, c)| c).collect()
    };
    let transpositions = a_seq
        .iter()
        .zip(b_seq.iter())
        .filter(|(x, y)| x != y)
        .count();
    let t = transpositions as f64 / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale 0.1, prefix ≤ 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).clamp(0.0, 1.0)
}

/// Monge-Elkan: for every token of `a`, the best `inner` similarity
/// against tokens of `b`, averaged. Asymmetric by definition; use
/// [`monge_elkan_sym`] for the symmetrised version.
pub fn monge_elkan<S: AsRef<str>, F>(a: &[S], b: &[S], inner: F) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    if a.is_empty() {
        return if b.is_empty() { 1.0 } else { 0.0 };
    }
    if b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for ta in a {
        let best = b
            .iter()
            .map(|tb| inner(ta.as_ref(), tb.as_ref()))
            .fold(0.0f64, f64::max);
        total += best;
    }
    total / a.len() as f64
}

/// Symmetrised Monge-Elkan: `min(ME(a,b), ME(b,a))` (the conservative
/// direction — a short title contained in a long one shouldn't score 1).
pub fn monge_elkan_sym<S: AsRef<str>, F>(a: &[S], b: &[S], inner: F) -> f64
where
    F: Fn(&str, &str) -> f64 + Copy,
{
    monge_elkan(a, b, inner).min(monge_elkan(b, a, inner))
}

/// Exact equality after trimming, as a 0/1 similarity.
pub fn exact(a: &str, b: &str) -> f64 {
    f64::from(a.trim() == b.trim())
}

/// Relative numeric similarity: `1 − |a−b| / max(|a|,|b|)`, clamped to
/// `[0,1]`; both zero → 1.
pub fn relative_numeric(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    // Reference implementations: the pre-rewrite `HashSet<&str>` kernels,
    // kept verbatim so property tests can pin the sorted-hash rewrite to
    // the old semantics bit for bit.
    fn ref_set<S: AsRef<str>>(tokens: &[S]) -> HashSet<&str> {
        tokens.iter().map(AsRef::as_ref).collect()
    }

    fn ref_jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
        let (a, b) = (ref_set(a), ref_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let inter = a.intersection(&b).count() as f64;
        let union = (a.len() + b.len()) as f64 - inter;
        inter / union
    }

    fn ref_overlap<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
        let (a, b) = (ref_set(a), ref_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let denom = a.len().min(b.len()) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        a.intersection(&b).count() as f64 / denom
    }

    fn ref_dice<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
        let (a, b) = (ref_set(a), ref_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        2.0 * a.intersection(&b).count() as f64 / (a.len() + b.len()) as f64
    }

    fn ref_cosine<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
        let (a, b) = (ref_set(a), ref_set(b));
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let denom = ((a.len() * b.len()) as f64).sqrt();
        if denom == 0.0 {
            return 0.0;
        }
        a.intersection(&b).count() as f64 / denom
    }

    #[test]
    fn sorted_hashes_are_sorted_and_deduped() {
        let h = sorted_token_hashes(&["tv", "sony", "tv", "", "sony"]);
        assert_eq!(
            h.len(),
            3,
            "duplicates collapse, empty token is one element"
        );
        assert!(h.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(sorted_token_hashes::<String>(&[]).is_empty());
    }

    /// Collision contract: a hash collision merges the colliding tokens
    /// into one set element — identical to how a *duplicate* token behaves
    /// — and never breaks the sorted/dedup invariant. Real FNV-1a 64
    /// collisions are infeasible to construct, so the collision is forced
    /// by feeding the kernels hash arrays in which distinct upstream
    /// tokens were assigned the same hash.
    #[test]
    fn forced_collision_merges_tokens_in_set_kernels() {
        // Side A held three distinct tokens, two of which collided on 9.
        let a = vec![5u64, 9];
        let b = vec![9u64];
        // The merged element intersects once; |A| counts it once.
        assert_eq!(jaccard_sorted(&a, &b), 0.5);
        assert_eq!(overlap_sorted(&a, &b), 1.0);
        assert_eq!(dice_sorted(&a, &b), 2.0 / 3.0);
        // Identical to the duplicate-token case by construction:
        let dup = sorted_token_hashes(&["x", "y", "y"]);
        assert_eq!(dup.len(), 2);
    }

    #[test]
    fn forced_collision_sums_weights_in_sorted_weights() {
        use crate::weight::SortedWeights;
        // Two distinct tokens collided on hash 42 with weights 1 and 2.
        let w = SortedWeights::from_hashed_entries(vec![(42, 1.0), (7, 1.0), (42, 2.0)]);
        assert_eq!(
            w.entries(),
            &[(7, 1.0), (42, 3.0)],
            "mass summed, order kept"
        );
        let other = SortedWeights::from_hashed_entries(vec![(42, 3.0)]);
        assert!((weighted_jaccard_sorted(&w, &other) - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&toks("a b c"), &toks("a b c")), 1.0);
        assert_eq!(jaccard(&toks("a b"), &toks("c d")), 0.0);
        assert!((jaccard(&toks("a b c"), &toks("b c d")) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard::<String>(&[], &[]), 1.0);
        assert_eq!(jaccard(&toks("a"), &[] as &[String]), 0.0);
    }

    #[test]
    fn overlap_and_dice() {
        let (a, b) = (toks("a b c d"), toks("a b"));
        assert_eq!(overlap_coefficient(&a, &b), 1.0);
        assert!((dice(&a, &b) - 2.0 * 2.0 / 6.0).abs() < 1e-12);
        assert!((cosine_sets(&a, &b) - 2.0 / (8.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_favours_heavy_overlap() {
        let mut a = WeightedTokens::new();
        a.insert("rare".into(), 10.0);
        a.insert("tv".into(), 1.0);
        let mut b = WeightedTokens::new();
        b.insert("rare".into(), 10.0);
        b.insert("black".into(), 1.0);
        let wj = weighted_jaccard(&a, &b);
        assert!(wj > 0.8, "heavy shared token dominates: {wj}");
        let uj = jaccard(&["rare", "tv"], &["rare", "black"]);
        assert!(wj > uj);
    }

    #[test]
    fn weighted_cosine_bounds() {
        let mut a = WeightedTokens::new();
        a.insert("x".into(), 2.0);
        assert_eq!(weighted_cosine(&a, &a), 1.0);
        let b = WeightedTokens::new();
        assert_eq!(weighted_cosine(&a, &b), 0.0);
        assert_eq!(weighted_cosine(&b, &b), 1.0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    /// The banded DP at both band edges: `max == d` must return the exact
    /// distance, `max == d − 1` must bail — including on multi-byte
    /// (unicode) inputs where char and byte lengths diverge.
    #[test]
    fn bounded_band_edges() {
        for (a, b) in [
            ("kitten", "sitting"),
            ("naïve", "naive"),
            ("héllo wörld", "hello world"),
            ("ベータマックス", "ベーターマックス"),
            ("", "abc"),
        ] {
            let d = levenshtein(a, b);
            assert_eq!(
                levenshtein_bounded(a, b, d),
                Some(d),
                "{a:?} vs {b:?} at max=d"
            );
            assert_eq!(
                levenshtein_bounded(a, b, d + 1),
                Some(d),
                "{a:?} vs {b:?} at max=d+1"
            );
            if d > 0 {
                assert_eq!(
                    levenshtein_bounded(a, b, d - 1),
                    None,
                    "{a:?} vs {b:?} at max=d-1"
                );
            }
        }
    }

    /// `levenshtein_similarity_exceeds` at thresholds sitting *exactly* on
    /// achievable similarity values — the `>` vs `>=` boundary.
    #[test]
    fn exceeds_is_strict_at_achievable_thresholds() {
        let (a, b) = ("kitten", "sitting"); // d = 3, maxlen = 7
        let s = levenshtein_similarity(a, b);
        assert!(
            !levenshtein_similarity_exceeds(a, b, s),
            "strictly-greater: ties fail"
        );
        assert!(levenshtein_similarity_exceeds(a, b, s - 1e-9));
        assert!(!levenshtein_similarity_exceeds(a, b, 1.0));
        assert!(levenshtein_similarity_exceeds("", "", 0.9));
        assert!(!levenshtein_similarity_exceeds(a, b, f64::NAN));
    }

    #[test]
    fn bounded_levenshtein_agrees_or_bails() {
        for (a, b) in [
            ("kitten", "sitting"),
            ("abc", "abc"),
            ("a", "xyz"),
            ("", ""),
        ] {
            let d = levenshtein(a, b);
            for max in 0..6 {
                let got = levenshtein_bounded(a, b, max);
                if d <= max {
                    assert_eq!(got, Some(d), "{a} {b} max={max}");
                } else {
                    assert_eq!(got, None, "{a} {b} max={max}");
                }
            }
        }
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro("dixon", "dicksonx") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert!((jaro_winkler("martha", "marhta") - 0.961111).abs() < 1e-4);
    }

    #[test]
    fn monge_elkan_containment() {
        let a = toks("sony bravia");
        let b = toks("sony bravia kdl 40 lcd tv");
        let me = monge_elkan(&a, &b, exact);
        assert_eq!(me, 1.0); // every token of a appears in b
        let sym = monge_elkan_sym(&a, &b, exact);
        assert!(sym < 1.0); // …but not vice versa
    }

    #[test]
    fn relative_numeric_similarity() {
        assert_eq!(relative_numeric(100.0, 100.0), 1.0);
        assert!((relative_numeric(100.0, 90.0) - 0.9).abs() < 1e-12);
        assert_eq!(relative_numeric(0.0, 0.0), 1.0);
        assert_eq!(relative_numeric(0.0, 5.0), 0.0);
    }

    proptest! {
        /// The sorted-hash kernels agree with the old `HashSet<&str>`
        /// implementations **bit for bit** — same intersection and set
        /// sizes, so the same float divisions — across random token
        /// vectors including empty sets and multi-byte unicode tokens.
        #[test]
        fn sorted_kernels_match_hashset_reference_bit_exactly(
            a in proptest::collection::vec("[a-cé本]{0,3}", 0..8),
            b in proptest::collection::vec("[a-cé本]{0,3}", 0..8),
        ) {
            for (new, old) in [
                (jaccard::<String> as fn(&[String], &[String]) -> f64, ref_jaccard::<String> as fn(&[String], &[String]) -> f64),
                (overlap_coefficient::<String>, ref_overlap::<String>),
                (dice::<String>, ref_dice::<String>),
                (cosine_sets::<String>, ref_cosine::<String>),
            ] {
                prop_assert_eq!(new(&a, &b).to_bits(), old(&a, &b).to_bits());
            }
        }

        /// Uniform weights make the weighted sorted kernel collapse to the
        /// plain set kernel, bit for bit (min/max of unit weights count
        /// exactly like set membership).
        #[test]
        fn uniform_sorted_weights_equal_set_jaccard(
            a in proptest::collection::vec("[a-d]{0,3}", 0..8),
            b in proptest::collection::vec("[a-d]{0,3}", 0..8),
        ) {
            use crate::weight::{uniform_weights, SortedWeights};
            let wa = SortedWeights::from_weighted(&uniform_weights(&a));
            let wb = SortedWeights::from_weighted(&uniform_weights(&b));
            prop_assert_eq!(
                weighted_jaccard_sorted(&wa, &wb).to_bits(),
                jaccard(&a, &b).to_bits()
            );
        }

        /// The sorted weighted kernels match the `HashMap` versions to
        /// summation-order tolerance for every weighting's value range.
        #[test]
        fn sorted_weighted_kernels_match_hashmap_reference(
            a in proptest::collection::vec("[a-d]{1,3}", 0..8),
            b in proptest::collection::vec("[a-d]{1,3}", 0..8),
        ) {
            use crate::weight::{tf_weights, SortedWeights};
            let (ma, mb) = (tf_weights(&a), tf_weights(&b));
            let (sa, sb) = (SortedWeights::from_weighted(&ma), SortedWeights::from_weighted(&mb));
            prop_assert!((weighted_jaccard_sorted(&sa, &sb) - weighted_jaccard(&ma, &mb)).abs() < 1e-12);
            prop_assert!((weighted_cosine_sorted(&sa, &sb) - weighted_cosine(&ma, &mb)).abs() < 1e-12);
        }

        /// The banded threshold decision is exactly `similarity > t`, for
        /// arbitrary thresholds including out-of-range ones.
        #[test]
        fn exceeds_matches_similarity_comparison(
            a in "[abé]{0,8}",
            b in "[abé]{0,8}",
            t in -0.5f64..1.5,
        ) {
            prop_assert_eq!(
                levenshtein_similarity_exceeds(&a, &b, t),
                levenshtein_similarity(&a, &b) > t
            );
            // And at every achievable similarity value exactly.
            let maxlen = a.chars().count().max(b.chars().count());
            for d in 0..=maxlen {
                let t = 1.0 - d as f64 / maxlen as f64;
                prop_assert_eq!(
                    levenshtein_similarity_exceeds(&a, &b, t),
                    levenshtein_similarity(&a, &b) > t
                );
            }
        }

        /// All set measures stay in [0,1], are symmetric, and are 1 on
        /// identical inputs.
        #[test]
        fn set_measure_invariants(
            a in proptest::collection::vec("[a-c]{1,3}", 0..6),
            b in proptest::collection::vec("[a-c]{1,3}", 0..6),
        ) {
            for f in [jaccard::<String>, overlap_coefficient::<String>, dice::<String>, cosine_sets::<String>] {
                let s = f(&a, &b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!((f(&b, &a) - s).abs() < 1e-12);
                prop_assert!((f(&a, &a) - 1.0).abs() < 1e-12);
            }
        }

        /// Levenshtein is a metric: symmetry, identity, triangle
        /// inequality.
        #[test]
        fn levenshtein_is_a_metric(
            a in "[ab]{0,8}",
            b in "[ab]{0,8}",
            c in "[ab]{0,8}",
        ) {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert!(
                levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c)
            );
        }

        /// The bounded variant agrees with the exact one whenever it
        /// returns a value.
        #[test]
        fn bounded_matches_exact(
            a in "[abc]{0,10}",
            b in "[abc]{0,10}",
            max in 0usize..8,
        ) {
            let exact_d = levenshtein(&a, &b);
            match levenshtein_bounded(&a, &b, max) {
                Some(d) => prop_assert_eq!(d, exact_d),
                None => prop_assert!(exact_d > max),
            }
        }

        /// Jaro(-Winkler) stays in [0,1] and is 1 on equal strings.
        #[test]
        fn jaro_bounds(a in "[a-d]{0,8}", b in "[a-d]{0,8}") {
            let j = jaro(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            let jw = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&jw));
            prop_assert!(jw >= j - 1e-12);
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
