//! Sequence-alignment similarities: Needleman-Wunsch (global),
//! Smith-Waterman (local), and affine-gap alignment.
//!
//! Edit distance charges every gap equally; alignment scoring lets LFs
//! reward long shared runs ("panasonic viera th-50pz700u" inside a longer
//! retailer title) and tolerate block insertions, which plain Levenshtein
//! punishes linearly. All scores are normalised into `[0, 1]`.

/// Scoring scheme for the alignment functions.
#[derive(Debug, Clone, Copy)]
pub struct AlignScoring {
    /// Score for a character match (> 0).
    pub matched: f64,
    /// Score for a mismatch (≤ 0).
    pub mismatch: f64,
    /// Cost to open a gap (≤ 0).
    pub gap_open: f64,
    /// Cost to extend an open gap (≤ 0, ≥ gap_open).
    pub gap_extend: f64,
}

impl Default for AlignScoring {
    fn default() -> Self {
        AlignScoring {
            matched: 2.0,
            mismatch: -1.0,
            gap_open: -2.0,
            gap_extend: -0.5,
        }
    }
}

/// Global (Needleman-Wunsch) alignment similarity with linear gaps:
/// `score / (matched × max_len)`, clamped to `[0, 1]`.
pub fn needleman_wunsch(a: &str, b: &str, s: AlignScoring) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let gap = s.gap_open;
    let mut prev: Vec<f64> = (0..=a.len()).map(|i| gap * i as f64).collect();
    let mut cur = vec![0.0; a.len() + 1];
    for (j, cb) in b.iter().enumerate() {
        cur[0] = gap * (j + 1) as f64;
        for (i, ca) in a.iter().enumerate() {
            let sub = prev[i] + if ca == cb { s.matched } else { s.mismatch };
            cur[i + 1] = sub.max(prev[i + 1] + gap).max(cur[i] + gap);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let raw = prev[a.len()];
    (raw / (s.matched * a.len().max(b.len()) as f64)).clamp(0.0, 1.0)
}

/// Local (Smith-Waterman) alignment similarity with linear gaps:
/// best-local-run score normalised by the *shorter* string's perfect
/// score — 1.0 when one string contains the other exactly.
pub fn smith_waterman(a: &str, b: &str, s: AlignScoring) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let gap = s.gap_open;
    let mut prev = vec![0.0f64; a.len() + 1];
    let mut cur = vec![0.0f64; a.len() + 1];
    let mut best = 0.0f64;
    for cb in b.iter() {
        for (i, ca) in a.iter().enumerate() {
            let sub = prev[i] + if ca == cb { s.matched } else { s.mismatch };
            let v = sub.max(prev[i + 1] + gap).max(cur[i] + gap).max(0.0);
            cur[i + 1] = v;
            best = best.max(v);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0.0;
    }
    (best / (s.matched * a.len().min(b.len()) as f64)).clamp(0.0, 1.0)
}

/// Global alignment with **affine gaps** (Gotoh): a gap of length k costs
/// `gap_open + (k−1)·gap_extend`, so one block insertion (a dropped token)
/// is much cheaper than k scattered edits. Normalised like
/// [`needleman_wunsch`].
pub fn affine_gap(a: &str, b: &str, s: AlignScoring) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    const NEG: f64 = f64::NEG_INFINITY;
    let n = a.len();
    // M: ends in match/mismatch; X: gap in b (consume a); Y: gap in a.
    let mut m_prev = vec![NEG; n + 1];
    let mut x_prev = vec![NEG; n + 1];
    let mut y_prev = vec![NEG; n + 1];
    m_prev[0] = 0.0;
    for (i, x) in x_prev.iter_mut().enumerate().skip(1) {
        *x = s.gap_open + s.gap_extend * (i as f64 - 1.0);
    }
    let mut m_cur = vec![NEG; n + 1];
    let mut x_cur = vec![NEG; n + 1];
    let mut y_cur = vec![NEG; n + 1];
    for (j, cb) in b.iter().enumerate() {
        m_cur[0] = NEG;
        x_cur[0] = NEG;
        y_cur[0] = s.gap_open + s.gap_extend * j as f64;
        for (i, ca) in a.iter().enumerate() {
            let sub = if ca == cb { s.matched } else { s.mismatch };
            m_cur[i + 1] = sub + m_prev[i].max(x_prev[i]).max(y_prev[i]);
            x_cur[i + 1] = (m_cur[i] + s.gap_open).max(x_cur[i] + s.gap_extend);
            y_cur[i + 1] = (m_prev[i + 1] + s.gap_open).max(y_prev[i + 1] + s.gap_extend);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut x_prev, &mut x_cur);
        std::mem::swap(&mut y_prev, &mut y_cur);
    }
    let raw = m_prev[n].max(x_prev[n]).max(y_prev[n]);
    (raw / (s.matched * a.len().max(b.len()) as f64)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sc() -> AlignScoring {
        AlignScoring::default()
    }

    #[test]
    fn identical_strings_score_one() {
        for f in [needleman_wunsch, smith_waterman, affine_gap] {
            assert!((f("sony bravia", "sony bravia", sc()) - 1.0).abs() < 1e-9);
            assert_eq!(f("", "", sc()), 1.0);
            assert_eq!(f("abc", "", sc()), 0.0);
        }
    }

    #[test]
    fn local_alignment_finds_contained_substring() {
        let short = "kdl-40v2500";
        let long = "sony bravia kdl-40v2500 40in lcd hdtv";
        assert!((smith_waterman(short, long, sc()) - 1.0).abs() < 1e-9);
        // Global alignment punishes the unmatched remainder.
        assert!(needleman_wunsch(short, long, sc()) < 0.5);
    }

    #[test]
    fn affine_gaps_beat_linear_on_block_insertions() {
        // One inserted token of 10 chars: affine charges open + 9 extends;
        // linear charges 10 opens.
        let a = "panasonic plasma hdtv";
        let b = "panasonic viera 50in plasma hdtv";
        let affine = affine_gap(a, b, sc());
        let linear = needleman_wunsch(a, b, sc());
        assert!(affine > linear, "affine {affine:.3} vs linear {linear:.3}");
        assert!(affine > 0.5);
    }

    #[test]
    fn mismatched_strings_score_low() {
        for f in [needleman_wunsch, smith_waterman, affine_gap] {
            let s = f("zzzzqqqq", "aaabbbb", sc());
            assert!(s < 0.2, "score {s}");
        }
    }

    proptest! {
        /// All alignment similarities stay in [0,1] and are symmetric.
        #[test]
        fn alignment_invariants(a in "[abc ]{0,12}", b in "[abc ]{0,12}") {
            for f in [needleman_wunsch, smith_waterman, affine_gap] {
                let s1 = f(&a, &b, sc());
                let s2 = f(&b, &a, sc());
                prop_assert!((0.0..=1.0).contains(&s1));
                prop_assert!((s1 - s2).abs() < 1e-9, "symmetry {s1} vs {s2}");
                let self_sim = f(&a, &a, sc());
                prop_assert!((self_sim - 1.0).abs() < 1e-9);
            }
        }

        /// Smith-Waterman dominates Needleman-Wunsch (local ≥ global after
        /// normalisation by the respective lengths when strings are equal
        /// length) — lengths equal by construction.
        #[test]
        fn local_ge_global_equal_length(
            (a, b) in (1usize..=8).prop_flat_map(|n| (
                proptest::collection::vec(proptest::char::range('a', 'b'), n),
                proptest::collection::vec(proptest::char::range('a', 'b'), n),
            )),
        ) {
            let a: String = a.into_iter().collect();
            let b: String = b.into_iter().collect();
            let sw = smith_waterman(&a, &b, sc());
            let nw = needleman_wunsch(&a, &b, sc());
            prop_assert!(sw >= nw - 1e-9);
        }
    }
}
