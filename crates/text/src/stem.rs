//! The Porter stemming algorithm (Porter, 1980), implemented from scratch.
//!
//! Stemming lets an LF treat `"connected"`, `"connection"` and
//! `"connecting"` as the same token, which raises token-overlap scores on
//! matching tuples whose descriptions use different word forms.
//!
//! The implementation follows the original five-step description; the unit
//! tests use the test vectors from the paper.

/// Stem one token. Tokens with non-ASCII-alphabetic characters or length
/// ≤ 2 are returned unchanged (the algorithm is defined for English words).
pub fn porter_stem(token: &str) -> String {
    if token.len() <= 2 || !token.bytes().all(|b| b.is_ascii_alphabetic()) {
        return token.to_string();
    }
    let mut s = Stemmer {
        b: token.to_ascii_lowercase().into_bytes(),
        j: 0,
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    String::from_utf8(s.b).expect("ascii in, ascii out")
}

struct Stemmer {
    b: Vec<u8>,
    /// End of the stem (index of last stem byte) after a suffix match.
    j: usize,
}

impl Stemmer {
    /// Is `b[i]` a consonant?
    fn is_cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_cons(i - 1),
            _ => true,
        }
    }

    /// The measure `m` of `b[0..=j]`: number of VC sequences.
    fn measure(&self) -> usize {
        let mut n = 0;
        let mut i = 0;
        let end = self.j + 1;
        // Skip initial consonants.
        while i < end {
            if !self.is_cons(i) {
                break;
            }
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < end {
                if self.is_cons(i) {
                    break;
                }
                i += 1;
            }
            if i >= end {
                return n;
            }
            n += 1;
            // Skip consonants.
            while i < end {
                if !self.is_cons(i) {
                    break;
                }
                i += 1;
            }
            if i >= end {
                return n;
            }
        }
    }

    /// Does the stem `b[0..=j]` contain a vowel?
    fn has_vowel(&self) -> bool {
        (0..=self.j).any(|i| !self.is_cons(i))
    }

    /// Does the whole word end with a double consonant?
    fn double_cons(&self) -> bool {
        let k = self.b.len() - 1;
        k >= 1 && self.b[k] == self.b[k - 1] && self.is_cons(k)
    }

    /// Does `b[0..=i]` end consonant-vowel-consonant, where the final
    /// consonant is not w, x or y? (the `*o` condition)
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_cons(i) || self.is_cons(i - 1) || !self.is_cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// If the word ends with `suffix`, set `j` to the end of the stem and
    /// return true.
    fn ends(&mut self, suffix: &str) -> bool {
        let s = suffix.as_bytes();
        if s.len() >= self.b.len() || !self.b.ends_with(s) {
            // `>=` (not `>`): the whole word being the suffix leaves an
            // empty stem, which the algorithm never rewrites.
            return false;
        }
        self.j = self.b.len() - s.len() - 1;
        true
    }

    /// Replace everything after the stem with `to`.
    fn set_to(&mut self, to: &str) {
        self.b.truncate(self.j + 1);
        self.b.extend_from_slice(to.as_bytes());
    }

    /// `ends(suffix)` + `set_to(to)` when measure > threshold.
    #[allow(dead_code)] // kept for symmetry with the reference implementation
    fn replace_if_m(&mut self, suffix: &str, to: &str, min_m: usize) -> bool {
        if self.ends(suffix) {
            if self.measure() > min_m {
                self.set_to(to);
            }
            true
        } else {
            false
        }
    }

    fn step1a(&mut self) {
        if self.b.ends_with(b"s") {
            if self.ends("sses") {
                self.b.truncate(self.b.len() - 2);
            } else if self.ends("ies") {
                self.set_to("i");
            } else if !self.b.ends_with(b"ss") && self.b.len() > 1 {
                self.b.truncate(self.b.len() - 1);
            }
        }
    }

    fn step1b(&mut self) {
        if self.ends("eed") {
            if self.measure() > 0 {
                self.b.truncate(self.b.len() - 1);
            }
            return;
        }
        let removed = if (self.ends("ed") || self.ends("ing")) && self.has_vowel() {
            self.b.truncate(self.j + 1);
            true
        } else {
            false
        };
        if removed {
            self.j = self.b.len().saturating_sub(1);
            if self.ends_word(b"at") || self.ends_word(b"bl") || self.ends_word(b"iz") {
                self.b.push(b'e');
            } else if self.double_cons() && !matches!(self.b[self.b.len() - 1], b'l' | b's' | b'z')
            {
                self.b.pop();
            } else if self.measure_full() == 1 && self.cvc(self.b.len() - 1) {
                self.b.push(b'e');
            }
        }
    }

    /// `ends` without touching `j` (whole-word suffix check).
    fn ends_word(&self, suffix: &[u8]) -> bool {
        self.b.ends_with(suffix)
    }

    /// Measure of the whole word.
    fn measure_full(&mut self) -> usize {
        self.j = self.b.len() - 1;
        self.measure()
    }

    fn step1c(&mut self) {
        if self.ends("y") && self.has_vowel() {
            let k = self.b.len() - 1;
            self.b[k] = b'i';
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (suffix, to) in RULES {
            if self.ends(suffix) {
                if self.measure() > 0 {
                    self.set_to(to);
                }
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (suffix, to) in RULES {
            if self.ends(suffix) {
                if self.measure() > 0 {
                    self.set_to(to);
                }
                return;
            }
        }
    }

    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ion",
            "ou", "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suffix in SUFFIXES {
            if self.ends(suffix) {
                if *suffix == "ion" && !matches!(self.b[self.j], b's' | b't') {
                    // `ion` only strips after s/t (adoption → adopt, but
                    // not onion → on).
                    return;
                }
                if self.measure() > 1 {
                    self.b.truncate(self.j + 1);
                }
                return;
            }
        }
    }

    fn step5(&mut self) {
        // 5a
        if self.b.ends_with(b"e") && self.b.len() > 1 {
            self.j = self.b.len() - 2;
            let m = self.measure();
            if m > 1 || (m == 1 && !self.cvc(self.b.len() - 2)) {
                self.b.pop();
            }
        }
        // 5b
        if self.b.ends_with(b"l") && self.double_cons() {
            self.j = self.b.len() - 1;
            if self.measure() > 1 {
                self.b.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test vectors from Porter (1980).
    #[test]
    fn paper_vectors() {
        for (input, expected) in [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ] {
            assert_eq!(porter_stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn short_and_nonalpha_tokens_pass_through() {
        assert_eq!(porter_stem("tv"), "tv");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem("40in"), "40in");
        assert_eq!(porter_stem("x-ray"), "x-ray");
        assert_eq!(porter_stem(""), "");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in ["connect", "matching", "generalizations", "oscillators"] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            assert_eq!(once, twice, "idempotence for {w:?}");
        }
    }

    #[test]
    fn uppercase_is_lowercased() {
        assert_eq!(porter_stem("Connected"), "connect");
    }
}
