//! Smart data sampling (paper §2.1, feature 1.1).
//!
//! Random candidate pairs are almost all non-matches (class imbalance), so
//! showing random pairs wastes the user's attention. Panda instead shows
//! pairs that are *likely matches* according to a cheap model-independent
//! signal — the blocking embeddings' cosine similarity — but that the
//! current labeling model does **not** label as matches. Those are exactly
//! the pairs worth writing the next LF about.

/// Rank candidate indices for the "Show" button.
///
/// * `likelihood[i]` — embedding cosine of pair `i` (the "likelihood of
///   matching" column in the Data Viewer),
/// * `posteriors[i]` — current model γ (pairs with γ ≥ 0.5 are already
///   found; they are excluded),
/// * `already_shown` — pairs surfaced before are excluded so successive
///   clicks walk down the ranking instead of repeating it.
///
/// Returns up to `k` indices, highest likelihood first.
pub fn smart_sample(
    likelihood: &[f64],
    posteriors: &[f64],
    already_shown: &[bool],
    k: usize,
) -> Vec<usize> {
    assert_eq!(
        likelihood.len(),
        posteriors.len(),
        "smart_sample: likelihood and posteriors must align with the candidate set"
    );
    assert_eq!(
        likelihood.len(),
        already_shown.len(),
        "smart_sample: already_shown must align with the candidate set"
    );
    let mut eligible: Vec<usize> = (0..likelihood.len())
        .filter(|&i| posteriors[i] < 0.5 && !already_shown[i])
        .collect();
    eligible.sort_by(|&a, &b| likelihood[b].total_cmp(&likelihood[a]));
    eligible.truncate(k);
    eligible
}

/// Uncertainty sampling: pairs the model is *least sure* about
/// (γ nearest 0.5), not yet shown. Complements [`smart_sample`]: the smart
/// sampler hunts missed matches (recall); uncertainty sampling hunts the
/// decision boundary, where one user label or one new LF moves the most
/// pairs.
pub fn uncertainty_sample(posteriors: &[f64], already_shown: &[bool], k: usize) -> Vec<usize> {
    assert_eq!(
        posteriors.len(),
        already_shown.len(),
        "uncertainty_sample: already_shown must align with posteriors"
    );
    let mut eligible: Vec<usize> = (0..posteriors.len())
        .filter(|&i| !already_shown[i])
        .collect();
    eligible.sort_by(|&a, &b| {
        let ua = (posteriors[a] - 0.5).abs();
        let ub = (posteriors[b] - 0.5).abs();
        ua.total_cmp(&ub)
    });
    eligible.truncate(k);
    eligible
}

/// Disagreement sampling: pairs where LFs conflict (both a +1 and a −1
/// vote), ranked by how evenly split the votes are. These are the pairs
/// whose inspection most often reveals which LF needs fixing (Step 4
/// material).
pub fn disagreement_sample(columns: &[&[i8]], already_shown: &[bool], k: usize) -> Vec<usize> {
    let n = already_shown.len();
    for (j, col) in columns.iter().enumerate() {
        assert_eq!(
            col.len(),
            n,
            "disagreement_sample: column {j} must align with already_shown"
        );
    }
    let mut scored: Vec<(f64, usize)> = (0..n)
        .filter(|&i| !already_shown[i])
        .filter_map(|i| {
            let pos = columns.iter().filter(|c| c[i] > 0).count();
            let neg = columns.iter().filter(|c| c[i] < 0).count();
            if pos == 0 || neg == 0 {
                return None;
            }
            // Evenness: min/max vote split in (0, 1].
            Some((pos.min(neg) as f64 / pos.max(neg) as f64, i))
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, i)| i).collect()
}

/// Baseline for experiment E5: uniform random sample of not-yet-shown
/// pairs (what a tool without smart sampling shows).
pub fn random_sample(n: usize, already_shown: &[bool], k: usize, seed: u64) -> Vec<usize> {
    assert_eq!(
        n,
        already_shown.len(),
        "random_sample: already_shown must have exactly n entries"
    );
    // Deterministic Fisher-Yates over eligible indices via splitmix.
    let mut eligible: Vec<usize> = (0..n).filter(|&i| !already_shown[i]).collect();
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    let len = eligible.len();
    for i in 0..len.min(k) {
        let j = i + (next() as usize) % (len - i);
        eligible.swap(i, j);
    }
    eligible.truncate(k);
    eligible
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excludes_found_matches_and_shown_pairs() {
        let likelihood = [0.9, 0.8, 0.7, 0.95];
        let gamma = [0.9, 0.1, 0.1, 0.1]; // pair 0 already found
        let shown = [false, false, true, false]; // pair 2 already shown
        let s = smart_sample(&likelihood, &gamma, &shown, 10);
        assert_eq!(s, vec![3, 1]);
    }

    #[test]
    fn returns_at_most_k_in_likelihood_order() {
        let likelihood = [0.1, 0.5, 0.3, 0.9];
        let gamma = [0.0; 4];
        let shown = [false; 4];
        assert_eq!(smart_sample(&likelihood, &gamma, &shown, 2), vec![3, 1]);
    }

    #[test]
    fn random_sample_is_deterministic_and_respects_shown() {
        let shown = [false, true, false, false, false];
        let a = random_sample(5, &shown, 3, 42);
        let b = random_sample(5, &shown, 3, 42);
        assert_eq!(a, b);
        assert!(!a.contains(&1));
        assert_eq!(a.len(), 3);
        let c = random_sample(5, &shown, 3, 43);
        // Different seed usually differs (not guaranteed, but with 4
        // eligible and 3 slots the orderings differ for these seeds).
        assert!(a != c || a.len() == c.len());
    }

    #[test]
    fn uncertainty_ranks_by_distance_to_half() {
        let gamma = [0.1, 0.48, 0.95, 0.6];
        let shown = [false; 4];
        assert_eq!(uncertainty_sample(&gamma, &shown, 2), vec![1, 3]);
        let shown = [false, true, false, false];
        assert_eq!(uncertainty_sample(&gamma, &shown, 2), vec![3, 0]);
    }

    #[test]
    fn disagreement_requires_both_polarities() {
        let a: &[i8] = &[1, 1, 1, 0];
        let b: &[i8] = &[-1, 1, 0, -1];
        let shown = [false; 4];
        // Pair 0 is a clean 1v1 conflict; pairs 1-3 have no conflict.
        assert_eq!(disagreement_sample(&[a, b], &shown, 5), vec![0]);
    }

    #[test]
    fn empty_when_everything_found() {
        let s = smart_sample(&[0.9, 0.9], &[0.9, 0.8], &[false, false], 5);
        assert!(s.is_empty());
    }

    // --- length-mismatch error paths: each must fail fast with a message
    // naming the offending argument, not an index-out-of-bounds later (or,
    // worse, a silently truncated ranking when the longer slice wins).

    #[test]
    #[should_panic(expected = "smart_sample: likelihood and posteriors")]
    fn smart_sample_rejects_posterior_mismatch() {
        smart_sample(&[0.9, 0.8], &[0.1], &[false, false], 5);
    }

    #[test]
    #[should_panic(expected = "smart_sample: already_shown")]
    fn smart_sample_rejects_shown_mismatch() {
        smart_sample(&[0.9, 0.8], &[0.1, 0.2], &[false], 5);
    }

    #[test]
    #[should_panic(expected = "uncertainty_sample: already_shown")]
    fn uncertainty_sample_rejects_shown_mismatch() {
        uncertainty_sample(&[0.5, 0.5, 0.5], &[false, false], 5);
    }

    #[test]
    #[should_panic(expected = "disagreement_sample: column 1")]
    fn disagreement_sample_rejects_short_column() {
        let a: &[i8] = &[1, -1, 0];
        let b: &[i8] = &[1, -1];
        disagreement_sample(&[a, b], &[false, false, false], 5);
    }

    #[test]
    #[should_panic(expected = "random_sample: already_shown")]
    fn random_sample_rejects_shown_mismatch() {
        random_sample(4, &[false; 3], 2, 7);
    }
}
