//! The serializable panel structs (what the GUI renders).

use panda_lf::LfStatsRow;
use panda_table::CandidatePair;
use serde::{Deserialize, Serialize};

/// The **EM Stats Panel**: the task's core statistics (§2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmStats {
    /// Rows in the left table.
    pub left_rows: usize,
    /// Rows in the right table.
    pub right_rows: usize,
    /// Candidate pairs after blocking.
    pub candidate_pairs: usize,
    /// Registered LFs.
    pub n_lfs: usize,
    /// Pairs the current labeling model calls matches (γ ≥ 0.5).
    pub matches_found: usize,
    /// Precision estimated from the user's spot labels on sampled
    /// predicted matches (`None` until labels exist — rendered as "NAN"
    /// in the paper's screenshot).
    pub estimated_precision: Option<f64>,
    /// How many predicted matches the user has spot-labeled.
    pub n_user_labels: usize,
}

/// One row of the **Data Viewer Panel**: a candidate pair rendered
/// side-by-side, with the model's opinion and the smart-sampling
/// likelihood.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataViewerRow {
    /// Position in the candidate set (stable handle for labeling).
    pub candidate_index: usize,
    /// The pair.
    pub pair: CandidatePair,
    /// Column names (union of both schemas, left order first).
    pub columns: Vec<String>,
    /// Left tuple's rendered values, aligned with `columns`.
    pub left_values: Vec<String>,
    /// Right tuple's rendered values, aligned with `columns`.
    pub right_values: Vec<String>,
    /// Current model posterior γ (None before any fit).
    pub model_gamma: Option<f64>,
    /// Smart-sampling likelihood (embedding cosine), when the row came
    /// from the sampler.
    pub likelihood: Option<f64>,
    /// The user's label, if they provided one (the "M/U" column).
    pub user_label: Option<bool>,
    /// Ground truth when the task has gold (benchmarks; hidden in a real
    /// deployment).
    pub gold: Option<bool>,
}

/// A full serializable snapshot of the session's visible state — the
/// payload a web front-end would poll.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// EM Stats Panel.
    pub em: EmStats,
    /// LF Stats Panel rows.
    pub lfs: Vec<LfStatsRow>,
    /// Number of events so far (monotone counter — front-ends diff this).
    pub n_events: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes() {
        let snap = SessionSnapshot {
            em: EmStats {
                left_rows: 10,
                right_rows: 12,
                candidate_pairs: 30,
                n_lfs: 2,
                matches_found: 5,
                estimated_precision: None,
                n_user_labels: 0,
            },
            lfs: vec![],
            n_events: 3,
        };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"estimated_precision\":null"));
        let back: SessionSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.em, snap.em);
    }
}
