//! The session event log.
//!
//! Every state-changing interaction is recorded (ordinal, not wall-clock,
//! so sessions replay deterministically). Front-ends use the log to
//! refresh panels; tests use it to assert workflows.

use serde::{Deserialize, Serialize};

/// One state-changing session event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// Dataset loaded: `(left rows, right rows, candidate pairs)`.
    Loaded {
        left: usize,
        right: usize,
        candidates: usize,
    },
    /// Auto-LF discovery finished with this many LFs.
    AutoLfsDiscovered { count: usize },
    /// An LF was added or replaced.
    LfUpserted { name: String },
    /// An LF was removed.
    LfRemoved { name: String },
    /// `labeler.apply()` ran: `(applied, reused, failed)` LF counts.
    Applied {
        applied: usize,
        reused: usize,
        failed: usize,
    },
    /// The labeling model was (re-)fit; `matches_found` at γ ≥ 0.5.
    ModelFit { model: String, matches_found: usize },
    /// The smart sampler surfaced `count` pairs.
    Sampled { count: usize },
    /// The user labeled a pair.
    PairLabeled {
        candidate_index: usize,
        is_match: bool,
    },
    /// Deployment ran over the full candidate set.
    Deployed { candidates: usize, matches: usize },
}

/// An append-only event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<SessionEvent>,
}

impl EventLog {
    /// Append an event.
    pub fn push(&mut self, e: SessionEvent) {
        self.events.push(e);
    }

    /// All events in order.
    pub fn events(&self) -> &[SessionEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_append_only_and_ordered() {
        let mut log = EventLog::default();
        log.push(SessionEvent::Loaded {
            left: 1,
            right: 2,
            candidates: 3,
        });
        log.push(SessionEvent::LfUpserted { name: "x".into() });
        assert_eq!(log.len(), 2);
        assert!(matches!(log.events()[0], SessionEvent::Loaded { .. }));
    }
}
