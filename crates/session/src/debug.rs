//! Semantic debugging queries (paper §2.1, feature 2.2).
//!
//! "In the IDE we provide an intuitive GUI where users can point and click
//! to quickly narrow down to the record pairs where each LF may be making
//! mistakes." Each click corresponds to one [`DebugQuery`] evaluated
//! against the label matrix and the model posteriors.

use serde::{Deserialize, Serialize};

/// Which slice of pairs to show for an LF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DebugQuery {
    /// Pairs the LF labels +1 but the model labels −1 — the paper's
    /// example: clicking the estimated FPR of `name_overlap`.
    LikelyFalsePositives,
    /// Pairs the LF labels −1 but the model labels +1.
    LikelyFalseNegatives,
    /// Pairs where the LF votes and at least one other LF votes the other
    /// way.
    Conflicts,
    /// Pairs the LF voted +1 on (clicking the "#matches" cell).
    VotedMatch,
    /// Pairs the LF voted −1 on.
    VotedNonMatch,
    /// Pairs the LF abstained on.
    Abstained,
}

/// Evaluate a query: returns candidate indices, most-confident first
/// (by |γ − 0.5|) so the clearest disagreements surface at the top.
pub fn run_query(
    query: DebugQuery,
    lf_column: &[i8],
    all_columns: &[&[i8]],
    posteriors: &[f64],
) -> Vec<usize> {
    let model_match = |i: usize| posteriors[i] >= 0.5;
    let mut out: Vec<usize> = (0..lf_column.len())
        .filter(|&i| match query {
            DebugQuery::LikelyFalsePositives => lf_column[i] > 0 && !model_match(i),
            DebugQuery::LikelyFalseNegatives => lf_column[i] < 0 && model_match(i),
            DebugQuery::Conflicts => {
                lf_column[i] != 0
                    && all_columns
                        .iter()
                        .any(|c| c[i] != 0 && c[i] != lf_column[i])
            }
            DebugQuery::VotedMatch => lf_column[i] > 0,
            DebugQuery::VotedNonMatch => lf_column[i] < 0,
            DebugQuery::Abstained => lf_column[i] == 0,
        })
        .collect();
    out.sort_by(|&a, &b| {
        let ca = (posteriors[a] - 0.5).abs();
        let cb = (posteriors[b] - 0.5).abs();
        // Tie-break on the candidate index: equal-confidence pairs must
        // come back in a stable order, or the IDE's panel (and any test
        // of it) reshuffles run to run.
        cb.total_cmp(&ca).then_with(|| a.cmp(&b))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positive_query() {
        let lf = [1i8, 1, -1, 0];
        let gamma = [0.9, 0.1, 0.05, 0.7];
        let idx = run_query(DebugQuery::LikelyFalsePositives, &lf, &[&lf], &gamma);
        assert_eq!(idx, vec![1]); // voted +1, model says 0.1
    }

    #[test]
    fn false_negative_query() {
        let lf = [-1i8, -1, 1, 0];
        let gamma = [0.9, 0.2, 0.95, 0.7];
        let idx = run_query(DebugQuery::LikelyFalseNegatives, &lf, &[&lf], &gamma);
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn conflicts_need_a_disagreeing_lf() {
        let lf = [1i8, 1, 0];
        let other = [-1i8, 1, -1];
        let gamma = [0.5, 0.5, 0.5];
        let idx = run_query(DebugQuery::Conflicts, &lf, &[&lf, &other], &gamma);
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn results_sorted_by_model_confidence() {
        let lf = [1i8, 1, 1];
        let gamma = [0.4, 0.05, 0.2];
        let idx = run_query(DebugQuery::LikelyFalsePositives, &lf, &[&lf], &gamma);
        assert_eq!(idx, vec![1, 2, 0]); // 0.05 is the most confident miss
    }

    #[test]
    fn posterior_ties_order_by_candidate_index() {
        // All posteriors exactly equidistant from 0.5 (0.25 and 0.75 are
        // dyadic, so |γ−0.5| is bit-identical) → pure tie. The order must
        // be the candidate index order, deterministically.
        let lf = [1i8, 1, 1, 1];
        let gamma = [0.25, 0.75, 0.25, 0.75];
        let idx = run_query(DebugQuery::VotedMatch, &lf, &[&lf], &gamma);
        assert_eq!(idx, vec![0, 1, 2, 3]);
        // Mixed: one clear winner, then tied runners-up in index order.
        let gamma2 = [0.75, 1.0, 0.25, 0.75];
        let idx2 = run_query(DebugQuery::VotedMatch, &lf, &[&lf], &gamma2);
        assert_eq!(idx2, vec![1, 0, 2, 3]);
    }

    /// All six variants against one hand-built matrix, checking the exact
    /// slice each one selects.
    #[test]
    fn all_six_queries_on_a_hand_built_matrix() {
        // pair:   0    1    2    3    4    5
        let lf = [1i8, 1, -1, -1, 0, 0];
        let other = [1i8, -1, -1, 1, 1, 0];
        // 0.25/0.75 are dyadic: pairs 1 and 3 tie exactly on |γ−0.5|.
        let gamma = [0.9, 0.25, 0.1, 0.75, 0.5, 0.3];
        let all: [&[i8]; 2] = [&lf, &other];
        let q = |query| run_query(query, &lf, &all, &gamma);
        // +1 votes where the model says non-match: pair 1.
        assert_eq!(q(DebugQuery::LikelyFalsePositives), vec![1]);
        // −1 votes where the model says match: pair 3.
        assert_eq!(q(DebugQuery::LikelyFalseNegatives), vec![3]);
        // Voted pairs where `other` voted the opposite way: 1 and 3,
        // equally confident (0.3 each) → index order.
        assert_eq!(q(DebugQuery::Conflicts), vec![1, 3]);
        assert_eq!(q(DebugQuery::VotedMatch), vec![0, 1]);
        assert_eq!(q(DebugQuery::VotedNonMatch), vec![2, 3]);
        // Abstained: 4 and 5; 5 is more confident (|0.3−0.5| > |0.5−0.5|).
        assert_eq!(q(DebugQuery::Abstained), vec![5, 4]);
    }

    #[test]
    fn vote_slices() {
        let lf = [1i8, -1, 0, 1];
        let gamma = [0.5; 4];
        assert_eq!(
            run_query(DebugQuery::VotedMatch, &lf, &[&lf], &gamma).len(),
            2
        );
        assert_eq!(
            run_query(DebugQuery::VotedNonMatch, &lf, &[&lf], &gamma),
            vec![1]
        );
        assert_eq!(
            run_query(DebugQuery::Abstained, &lf, &[&lf], &gamma),
            vec![2]
        );
    }
}
