//! Semantic debugging queries (paper §2.1, feature 2.2).
//!
//! "In the IDE we provide an intuitive GUI where users can point and click
//! to quickly narrow down to the record pairs where each LF may be making
//! mistakes." Each click corresponds to one [`DebugQuery`] evaluated
//! against the label matrix and the model posteriors.

use serde::{Deserialize, Serialize};

/// Which slice of pairs to show for an LF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DebugQuery {
    /// Pairs the LF labels +1 but the model labels −1 — the paper's
    /// example: clicking the estimated FPR of `name_overlap`.
    LikelyFalsePositives,
    /// Pairs the LF labels −1 but the model labels +1.
    LikelyFalseNegatives,
    /// Pairs where the LF votes and at least one other LF votes the other
    /// way.
    Conflicts,
    /// Pairs the LF voted +1 on (clicking the "#matches" cell).
    VotedMatch,
    /// Pairs the LF voted −1 on.
    VotedNonMatch,
    /// Pairs the LF abstained on.
    Abstained,
}

/// Evaluate a query: returns candidate indices, most-confident first
/// (by |γ − 0.5|) so the clearest disagreements surface at the top.
pub fn run_query(
    query: DebugQuery,
    lf_column: &[i8],
    all_columns: &[&[i8]],
    posteriors: &[f64],
) -> Vec<usize> {
    let model_match = |i: usize| posteriors[i] >= 0.5;
    let mut out: Vec<usize> = (0..lf_column.len())
        .filter(|&i| match query {
            DebugQuery::LikelyFalsePositives => lf_column[i] > 0 && !model_match(i),
            DebugQuery::LikelyFalseNegatives => lf_column[i] < 0 && model_match(i),
            DebugQuery::Conflicts => {
                lf_column[i] != 0
                    && all_columns
                        .iter()
                        .any(|c| c[i] != 0 && c[i] != lf_column[i])
            }
            DebugQuery::VotedMatch => lf_column[i] > 0,
            DebugQuery::VotedNonMatch => lf_column[i] < 0,
            DebugQuery::Abstained => lf_column[i] == 0,
        })
        .collect();
    out.sort_by(|&a, &b| {
        let ca = (posteriors[a] - 0.5).abs();
        let cb = (posteriors[b] - 0.5).abs();
        cb.total_cmp(&ca)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positive_query() {
        let lf = [1i8, 1, -1, 0];
        let gamma = [0.9, 0.1, 0.05, 0.7];
        let idx = run_query(DebugQuery::LikelyFalsePositives, &lf, &[&lf], &gamma);
        assert_eq!(idx, vec![1]); // voted +1, model says 0.1
    }

    #[test]
    fn false_negative_query() {
        let lf = [-1i8, -1, 1, 0];
        let gamma = [0.9, 0.2, 0.95, 0.7];
        let idx = run_query(DebugQuery::LikelyFalseNegatives, &lf, &[&lf], &gamma);
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn conflicts_need_a_disagreeing_lf() {
        let lf = [1i8, 1, 0];
        let other = [-1i8, 1, -1];
        let gamma = [0.5, 0.5, 0.5];
        let idx = run_query(DebugQuery::Conflicts, &lf, &[&lf, &other], &gamma);
        assert_eq!(idx, vec![0]);
    }

    #[test]
    fn results_sorted_by_model_confidence() {
        let lf = [1i8, 1, 1];
        let gamma = [0.4, 0.05, 0.2];
        let idx = run_query(DebugQuery::LikelyFalsePositives, &lf, &[&lf], &gamma);
        assert_eq!(idx, vec![1, 2, 0]); // 0.05 is the most confident miss
    }

    #[test]
    fn vote_slices() {
        let lf = [1i8, -1, 0, 1];
        let gamma = [0.5; 4];
        assert_eq!(
            run_query(DebugQuery::VotedMatch, &lf, &[&lf], &gamma).len(),
            2
        );
        assert_eq!(
            run_query(DebugQuery::VotedNonMatch, &lf, &[&lf], &gamma),
            vec![1]
        );
        assert_eq!(
            run_query(DebugQuery::Abstained, &lf, &[&lf], &gamma),
            vec![2]
        );
    }
}
