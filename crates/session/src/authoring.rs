//! The LF Authoring Panel's generated "notebook".
//!
//! In the demo, loading a dataset auto-generates a Jupyter notebook whose
//! first cell imports dependencies, second cell lists the discovered LFs
//! (`auto_lf_0`, …) for the user to copy/paste and modify, and last cell
//! runs `labeler.apply()`. The Rust analog is a generated source snippet
//! with the same three sections — users paste it into their project as the
//! starting point for manual LF work.

use panda_autolf::GeneratedLf;
use panda_lf::LabelingFunction as _;
use std::fmt::Write as _;

/// Render the generated-notebook source for a set of discovered LFs.
pub fn generate_notebook(task_name: &str, auto_lfs: &[GeneratedLf]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "//! Auto-generated LF notebook for task `{task_name}`."
    );
    let _ = writeln!(
        out,
        "//! Edit thresholds / copy patterns, then re-run apply()."
    );
    let _ = writeln!(out);
    // Cell 1: imports.
    let _ = writeln!(out, "// --- cell 1: dependencies ---");
    let _ = writeln!(out, "use panda::prelude::*;");
    let _ = writeln!(out, "use std::sync::Arc;");
    let _ = writeln!(out);
    // Cell 2: discovered LFs.
    let _ = writeln!(out, "// --- cell 2: discovered labeling functions ---");
    if auto_lfs.is_empty() {
        let _ = writeln!(out, "// (no auto LFs met the precision target)");
    }
    for g in auto_lfs {
        let _ = writeln!(
            out,
            "// {}: est. precision {:.3}, est. support {}, config {}",
            g.lf.name(),
            g.est_precision,
            g.est_support,
            g.config_id
        );
        let (upper, lower) = g.lf.thresholds();
        let _ = writeln!(
            out,
            "session.upsert_lf(Arc::new(SimilarityLf::new(\n    {:?}, {:?},\n    /* {} */ SimilarityConfig::default_jaccard(),\n    {upper:.4}, {lower:.4},\n)));",
            g.lf.name(),
            g.attribute,
            g.config_id,
        );
        let _ = writeln!(out);
    }
    // Cell 3: apply.
    let _ = writeln!(out, "// --- cell 3: combine votes (labeler.apply()) ---");
    let _ = writeln!(out, "let report = session.apply();");
    let _ = writeln!(
        out,
        "println!(\"applied {{}} LFs ({{}} reused)\", report.applied.len(), report.reused.len());"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_autolf::{generate_auto_lfs, AutoLfConfig};
    use panda_embed::{Blocker, EmbeddingLshBlocker};

    #[test]
    fn notebook_lists_discovered_lfs_in_three_cells() {
        let task = panda_datasets::generate(
            panda_datasets::DatasetFamily::AbtBuy,
            &panda_datasets::GeneratorConfig::new(2).with_entities(100),
        );
        let cands = EmbeddingLshBlocker::new(2).candidates(&task);
        let lfs = generate_auto_lfs(&task, &cands, &AutoLfConfig::default());
        let nb = generate_notebook("abt-buy", &lfs);
        assert!(nb.contains("cell 1"));
        assert!(nb.contains("cell 2"));
        assert!(nb.contains("cell 3"));
        assert!(nb.contains("session.apply()"));
        for g in &lfs {
            assert!(nb.contains(g.lf.name()), "notebook lists {}", g.lf.name());
        }
    }

    #[test]
    fn empty_lf_list_is_noted() {
        let nb = generate_notebook("t", &[]);
        assert!(nb.contains("no auto LFs"));
    }
}
