//! Scaling to large inputs (paper §4, future work): "handle large tables
//! with millions of records, e.g., by down-sampling input data for LF
//! development, which can then be applied to the entire dataset in a
//! scale-out manner".
//!
//! [`downsample_task`] draws a deterministic row sample of both tables for
//! the *development* phase; the resulting [`crate::PandaSession`]'s LFs
//! are rules, so [`crate::PandaSession::deploy`] then applies them to the
//! full tables. Gold pairs are remapped onto the sampled row ids so
//! benchmark metrics keep working on the sample.

use panda_table::{MatchSet, RecordId, Table, TablePair};
use std::collections::HashMap;

/// Deterministic sample of `k` distinct indices from `0..n` (splitmix
/// partial Fisher-Yates; no `rand` dependency in the session crate).
fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    let mut state = seed ^ 0x5bf0_3635;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    let k = k.min(n);
    for i in 0..k {
        let j = i + (next() as usize) % (n - i);
        all.swap(i, j);
    }
    all.truncate(k);
    all.sort_unstable(); // stable row order in the sampled table
    all
}

fn take_rows(table: &Table, keep: &[usize]) -> (Table, HashMap<u32, u32>) {
    let mut out = Table::new(table.name(), table.schema().clone());
    let mut remap = HashMap::with_capacity(keep.len());
    for &row in keep {
        let rec = table
            .record(RecordId(row as u32))
            .expect("sampled index in range");
        let new_id = out.push_row(rec.values().to_vec()).expect("same schema");
        remap.insert(row as u32, new_id.0);
    }
    (out, remap)
}

/// Down-sample a task for LF development: keep at most `max_left` /
/// `max_right` rows of each table (deterministic given `seed`), remapping
/// the gold set onto surviving pairs.
pub fn downsample_task(
    tables: &TablePair,
    max_left: usize,
    max_right: usize,
    seed: u64,
) -> TablePair {
    let keep_l = sample_indices(tables.left.len(), max_left, seed);
    let keep_r = sample_indices(tables.right.len(), max_right, seed.wrapping_add(1));
    let (left, lmap) = take_rows(&tables.left, &keep_l);
    let (right, rmap) = take_rows(&tables.right, &keep_r);
    let gold = tables.gold.as_ref().map(|g| {
        let mut out = MatchSet::new();
        for p in g.iter() {
            if let (Some(&l), Some(&r)) = (lmap.get(&p.left.0), rmap.get(&p.right.0)) {
                out.insert(RecordId(l), RecordId(r));
            }
        }
        out
    });
    TablePair { left, right, gold }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_table::Schema;

    fn task(n: usize) -> TablePair {
        let schema = Schema::of_text(&["name"]);
        let mut l = Table::new("l", schema.clone());
        let mut r = Table::new("r", schema);
        let mut gold = MatchSet::new();
        for i in 0..n {
            l.push(vec![format!("row {i}")]).unwrap();
            r.push(vec![format!("row {i}")]).unwrap();
            gold.insert(RecordId(i as u32), RecordId(i as u32));
        }
        TablePair::with_gold(l, r, gold)
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let t = task(100);
        let a = downsample_task(&t, 30, 20, 7);
        let b = downsample_task(&t, 30, 20, 7);
        assert_eq!(a.left.len(), 30);
        assert_eq!(a.right.len(), 20);
        assert_eq!(a.left.to_csv_string(), b.left.to_csv_string());
        let c = downsample_task(&t, 30, 20, 8);
        assert_ne!(a.left.to_csv_string(), c.left.to_csv_string());
    }

    #[test]
    fn gold_is_remapped_correctly() {
        let t = task(50);
        let s = downsample_task(&t, 25, 25, 3);
        let gold = s.gold.as_ref().unwrap();
        // Every surviving gold pair must point at rows with equal content
        // (our synthetic matches are identical rows).
        assert!(!gold.is_empty(), "some matches survive a 50% sample");
        for p in gold.iter() {
            let l = s.left.record(p.left).unwrap().text("name");
            let r = s.right.record(p.right).unwrap().text("name");
            assert_eq!(l, r, "remapped gold pair must still be a true match");
        }
    }

    #[test]
    fn oversized_request_keeps_everything() {
        let t = task(10);
        let s = downsample_task(&t, 100, 100, 1);
        assert_eq!(s.left.len(), 10);
        assert_eq!(s.gold.as_ref().unwrap().len(), 10);
    }
}
