//! Durable session state: everything a [`crate::PandaSession`] must
//! persist to be rebuilt **bit-exactly** after a process restart.
//!
//! The split of responsibilities with the serving layer:
//!
//! * This module defines the serializable [`SessionState`] and the
//!   encode/decode helpers, and `PandaSession` gains
//!   `dehydrate`/`rehydrate` (in `session.rs`).
//! * The tables themselves are **not** part of `SessionState` — the
//!   owner of the state (the serve layer's session store) persists the
//!   original create request (CSVs + config DTO) next to it and re-runs
//!   blocking at rehydration time. Blocking is deterministic under the
//!   session seed, and [`panda_lf::LabelMatrix::restore`] recomputes the
//!   candidate fingerprint from the re-derived candidate set, so the
//!   stored `matrix_digest` check also proves the candidates came out
//!   identical.
//! * Posteriors and fitted model parameters are stored as `f64::to_bits`
//!   words: JSON float round-tripping is shortest-representation exact
//!   in this workspace's vendored encoder, but bit patterns make the
//!   bit-exactness contract independent of the text encoding.

use crate::events::SessionEvent;
use serde::{Deserialize, Serialize};

/// One persisted labeling function.
///
/// `spec` is an opaque string the *owner* of the session store can turn
/// back into an LF (the serve layer stores the JSON of the wire-level
/// `LfSpec`). Auto-generated LFs (provenance `Auto`) carry no spec: they
/// are regenerated deterministically from tables + config at rehydration
/// and matched back by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LfState {
    /// Registry name.
    pub name: String,
    /// Registry version (feeds the matrix digest).
    pub version: u64,
    /// Rebuild recipe, `None` for auto-generated LFs.
    pub spec: Option<String>,
}

/// One persisted label-matrix column. Votes are packed one char per
/// pair: `+` / `-` / `.` for match / non-match / abstain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnState {
    /// LF name (matrix column key).
    pub name: String,
    /// Version the column was computed at.
    pub version: u64,
    /// Packed votes, one char per candidate pair.
    pub labels: String,
}

/// One user spot label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserLabel {
    /// Candidate index.
    pub candidate: u64,
    /// The user's verdict.
    pub is_match: bool,
}

/// The complete dehydrated session (minus tables/config, see module
/// docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// Registry entries in insertion order.
    pub lfs: Vec<LfState>,
    /// Registry version counter (NOT derivable from `lfs`: the
    /// highest-versioned LF may have been removed).
    pub next_lf_version: u64,
    /// [`panda_lf::LabelMatrix::digest`] at dehydration time — verified
    /// after rehydration before the session is served again.
    pub matrix_digest: u64,
    /// Matrix columns in column order.
    pub columns: Vec<ColumnState>,
    /// Posteriors as `f64::to_bits` words.
    pub posteriors: Vec<u64>,
    /// Fitted-model parameter blob ([`panda_model::LabelModel::capture_fitted`])
    /// as `f64::to_bits` words; `None` when the session never fitted.
    pub fitted_model: Option<Vec<u64>>,
    /// User spot labels, sorted by candidate index.
    pub user_labels: Vec<UserLabel>,
    /// Indices of candidates already shown by a sampler.
    pub shown: Vec<u64>,
    /// Sampler nonce (keeps post-recovery sampling on the pre-crash
    /// deterministic stream).
    pub sample_counter: u64,
    /// The full event log.
    pub events: Vec<SessionEvent>,
}

/// Pack votes as one char per pair.
pub fn encode_labels(labels: &[i8]) -> String {
    labels
        .iter()
        .map(|&v| match v {
            1.. => '+',
            0 => '.',
            _ => '-',
        })
        .collect()
}

/// Inverse of [`encode_labels`].
pub fn decode_labels(s: &str) -> Result<Vec<i8>, String> {
    s.chars()
        .map(|c| match c {
            '+' => Ok(1),
            '.' => Ok(0),
            '-' => Ok(-1),
            other => Err(format!("bad vote char {other:?} in persisted column")),
        })
        .collect()
}

/// `f64` slice → bit patterns (lossless, NaN-safe).
pub fn f64_bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Inverse of [`f64_bits`].
pub fn bits_f64(bits: &[u64]) -> Vec<f64> {
    bits.iter().map(|&b| f64::from_bits(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_encoding_round_trips() {
        let votes: Vec<i8> = vec![1, -1, 0, 0, 1, -1];
        assert_eq!(encode_labels(&votes), "+-..+-");
        assert_eq!(decode_labels("+-..+-").unwrap(), votes);
        assert!(decode_labels("+x").is_err());
    }

    #[test]
    fn f64_bits_round_trip_is_exact() {
        let xs = [0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1.0 / 3.0];
        let back = bits_f64(&f64_bits(&xs));
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
