//! The session object: state machine of the development & deployment
//! phases.

use crate::debug::{run_query, DebugQuery};
use crate::events::{EventLog, SessionEvent};
use crate::panels::{DataViewerRow, EmStats, SessionSnapshot};
use crate::persist::{self, SessionState};
use crate::sampling;
use panda_autolf::{generate_auto_lfs, AutoLfConfig};
use panda_embed::{cosine, Blocker, EmbeddingLshBlocker};
use panda_eval::metrics::{metrics_at_half, Metrics};
use panda_lf::lf::LfProvenance;
use panda_lf::{lf_stats, ApplyReport, BoxedLf, LabelMatrix, LfRegistry, LfStatsRow};
use panda_model::{LabelModel, MajorityVote, PandaModel, SnorkelModel, TransitivityMode};
use panda_table::{CandidateSet, MatchSet, TablePair};
use std::collections::HashMap;
use std::sync::Arc;

/// Which labeling model the session runs after each apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Majority vote.
    Majority,
    /// The Snorkel-style generic generative model.
    Snorkel,
    /// Panda's class-conditional model.
    Panda,
    /// Panda's model + ZeroER transitivity.
    PandaTransitive(TransitivityMode),
}

impl ModelChoice {
    fn build(&self) -> Box<dyn LabelModel> {
        match self {
            ModelChoice::Majority => Box::new(MajorityVote::default()),
            ModelChoice::Snorkel => Box::new(SnorkelModel::new()),
            ModelChoice::Panda => Box::new(PandaModel::new()),
            ModelChoice::PandaTransitive(mode) => {
                Box::new(PandaModel::new().with_transitivity(*mode))
            }
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Master seed (blocking LSH, sampling).
    pub seed: u64,
    /// Run auto-LF discovery at load (Step 1).
    pub auto_lfs: bool,
    /// Auto-LF generator knobs.
    pub auto_lf_config: AutoLfConfig,
    /// Labeling model.
    pub model: ModelChoice,
    /// Cosine floor for blocking.
    pub blocking_min_cosine: f32,
    /// Per-record candidate cap for blocking.
    pub blocking_max_per_record: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            seed: 0,
            auto_lfs: true,
            auto_lf_config: AutoLfConfig::default(),
            model: ModelChoice::Panda,
            blocking_min_cosine: 0.25,
            blocking_max_per_record: Some(32),
        }
    }
}

/// The outcome of the deployment phase.
#[derive(Debug, Clone)]
pub struct DeploymentResult {
    /// Candidate pairs on the deployment tables.
    pub candidates: CandidateSet,
    /// Final posteriors aligned with `candidates`.
    pub posteriors: Vec<f64>,
    /// Pairs predicted as matches (γ ≥ 0.5).
    pub predicted: MatchSet,
    /// Quality against gold, when the deployment tables carry it.
    pub metrics: Option<Metrics>,
    /// Table sizes (left, right) — needed to turn pairs into clusters.
    pub table_sizes: (usize, usize),
}

impl DeploymentResult {
    /// Resolve the predicted matches into entity clusters (connected
    /// components of the match graph) — the catalog view of the result.
    pub fn entity_clusters(&self) -> Vec<panda_eval::clustering::Cluster> {
        panda_eval::clustering::clusters_from_pairs(
            &self.predicted,
            self.table_sizes.0,
            self.table_sizes.1,
        )
    }
}

/// One Panda development session over one EM task.
pub struct PandaSession {
    config: SessionConfig,
    tables: TablePair,
    candidates: CandidateSet,
    /// Embedding cosine per candidate — the sampler's "likelihood".
    likelihood: Vec<f64>,
    registry: LfRegistry,
    matrix: LabelMatrix,
    posteriors: Vec<f64>,
    shown: Vec<bool>,
    user_labels: HashMap<usize, bool>,
    log: EventLog,
    sample_counter: u64,
    /// The model of the last refit, kept so ad-hoc pairs can be scored
    /// against its fitted parameters without refitting (`None` until the
    /// first fit).
    fitted: Option<Box<dyn LabelModel>>,
}

impl PandaSession {
    /// Deterministic blocking + sampler likelihood under a config —
    /// shared by [`PandaSession::load`] and [`PandaSession::rehydrate`]
    /// so recovery re-derives the exact candidate set the session was
    /// originally built over.
    fn block_candidates(tables: &TablePair, config: &SessionConfig) -> (CandidateSet, Vec<f64>) {
        let mut blocker = EmbeddingLshBlocker::new(config.seed);
        blocker.min_cosine = config.blocking_min_cosine;
        blocker.max_per_record = config.blocking_max_per_record;
        let candidates = blocker.candidates(tables);
        // Likelihood = embedding cosine (reusing the blocking embeddings).
        let (lvecs, rvecs) = blocker.embed_tables(tables);
        let likelihood: Vec<f64> = candidates
            .pairs()
            .iter()
            .map(|p| f64::from(cosine(&lvecs[p.left.idx()], &rvecs[p.right.idx()])))
            .collect();
        (candidates, likelihood)
    }

    /// Step 1: load a dataset — block, discover auto LFs, apply, fit.
    pub fn load(tables: TablePair, config: SessionConfig) -> Self {
        let _span = panda_obs::span("session.load");
        let (candidates, likelihood) = Self::block_candidates(&tables, &config);

        let mut session = PandaSession {
            shown: vec![false; candidates.len()],
            posteriors: vec![0.0; candidates.len()],
            likelihood,
            registry: LfRegistry::new(),
            matrix: LabelMatrix::new(),
            user_labels: HashMap::new(),
            log: EventLog::default(),
            sample_counter: 0,
            fitted: None,
            config,
            candidates,
            tables,
        };
        session.log.push(SessionEvent::Loaded {
            left: session.tables.left.len(),
            right: session.tables.right.len(),
            candidates: session.candidates.len(),
        });
        panda_obs::event("session.loaded")
            .field("left_rows", session.tables.left.len())
            .field("right_rows", session.tables.right.len())
            .field("candidates", session.candidates.len())
            .emit();

        if session.config.auto_lfs {
            let generated = generate_auto_lfs(
                &session.tables,
                &session.candidates,
                &session.config.auto_lf_config,
            );
            session.log.push(SessionEvent::AutoLfsDiscovered {
                count: generated.len(),
            });
            for g in generated {
                session.registry.upsert(Arc::new(g.lf));
            }
        }
        // Always apply + fit, even with an empty registry: the matrix must
        // know its row count before a snapshot, and the initial fit is part
        // of load's contract (panels render immediately).
        session.apply();
        session
    }

    /// Register (or replace) an LF — Step 3. Call [`PandaSession::apply`]
    /// afterwards, exactly like running `labeler.apply()` in the notebook.
    pub fn upsert_lf(&mut self, lf: BoxedLf) {
        self.log.push(SessionEvent::LfUpserted {
            name: lf.name().to_string(),
        });
        self.registry.upsert(lf);
    }

    /// Remove an LF by name.
    pub fn remove_lf(&mut self, name: &str) -> bool {
        let removed = self.registry.remove(name);
        if removed {
            self.log.push(SessionEvent::LfRemoved {
                name: name.to_string(),
            });
        }
        removed
    }

    /// `labeler.apply()`: incrementally apply new/modified LFs and refit
    /// the labeling model.
    pub fn apply(&mut self) -> ApplyReport {
        let _span = panda_obs::span("session.apply");
        let report = self
            .matrix
            .apply(&self.registry, &self.tables, &self.candidates);
        self.log.push(SessionEvent::Applied {
            applied: report.applied.len(),
            reused: report.reused.len(),
            failed: report.failed.len(),
        });
        self.refit();
        report
    }

    fn refit(&mut self) {
        let _span = panda_obs::span("session.refit");
        let mut model = self.config.model.build();
        // Warm-start from the previous posterior once one exists: EM
        // converges from where the last fit ended instead of from
        // scratch. The multi-start selection still applies, so a stale
        // warm start cannot degrade the fit.
        if self.fitted.is_some() && self.posteriors.len() == self.candidates.len() {
            model.set_warm_start(&self.posteriors);
        }
        self.posteriors = model.fit_predict(&self.matrix, Some(&self.candidates));
        self.log.push(SessionEvent::ModelFit {
            model: model.name().to_string(),
            matches_found: self.matches_found(),
        });
        self.fitted = Some(model);
        self.journal_lf_stats();
    }

    /// Refit the labeling model on the current matrix without re-running
    /// any LF — the serving path of `POST /sessions/{id}/fit`, and the
    /// companion of [`PandaSession::upsert_lf_incremental`] /
    /// [`PandaSession::remove_lf_incremental`] (which deliberately leave
    /// the posteriors stale so several LF edits can share one refit).
    pub fn fit(&mut self) {
        self.refit();
    }

    /// Register an LF and compute **only its column** — never a
    /// full-matrix apply, so the cost is O(new LF × pairs) no matter how
    /// many LFs exist. Does *not* refit; call [`PandaSession::fit`] when
    /// the edit batch is done. On a panicking LF the session (registry
    /// and matrix) is left unchanged and the panic message is returned.
    pub fn upsert_lf_incremental(&mut self, lf: BoxedLf) -> Result<(), String> {
        let _span = panda_obs::span("session.lf_upsert");
        let name = lf.name().to_string();
        let previous = self.registry.get(&name).cloned();
        let version = self.registry.upsert(lf);
        let added = {
            let lf_ref = self.registry.get(&name).expect("just upserted");
            self.matrix
                .add_column(lf_ref, version, &self.tables, &self.candidates)
        };
        match added {
            Ok(()) => {
                self.log.push(SessionEvent::LfUpserted { name });
                Ok(())
            }
            Err(msg) => {
                // Quarantine without corrupting state: the failed LF
                // leaves the registry; a replaced predecessor returns
                // (its still-valid column survived the failed add).
                match previous {
                    Some(prev) => {
                        self.registry.upsert(prev);
                    }
                    None => {
                        self.registry.remove(&name);
                    }
                }
                Err(msg)
            }
        }
    }

    /// Remove an LF and drop its matrix column in O(columns) — the
    /// serving path of `DELETE /sessions/{id}/lfs/{name}`. Does *not*
    /// refit. Returns whether the LF existed.
    pub fn remove_lf_incremental(&mut self, name: &str) -> bool {
        let _span = panda_obs::span("session.lf_remove");
        let removed = self.registry.remove(name);
        self.matrix.remove_column(name);
        if removed {
            self.log.push(SessionEvent::LfRemoved {
                name: name.to_string(),
            });
        }
        removed
    }

    /// Score an **ad-hoc** record pair against the fitted model without
    /// touching the candidate set or refitting — the serving path of
    /// `POST /match`. Runs every registered LF on the pair and asks the
    /// retained model to score the vote row.
    pub fn score_pair(&self, pair: panda_table::CandidatePair) -> Result<f64, String> {
        let model = self
            .fitted
            .as_ref()
            .ok_or("session has no fitted model yet (call fit first)")?;
        let p = self
            .tables
            .pair_ref(pair)
            .map_err(|e| format!("pair ({}, {}): {e}", pair.left.0, pair.right.0))?;
        let votes: Vec<i8> = self
            .registry
            .lfs()
            .iter()
            .map(|lf| lf.label(&p).as_i8())
            .collect();
        model.posterior_for_votes(&votes).ok_or_else(|| {
            format!(
                "model {:?} cannot score ad-hoc votes (arity {} vs fitted matrix {})",
                model.name(),
                votes.len(),
                self.matrix.n_lfs()
            )
        })
    }

    /// Has a model fit run yet?
    pub fn has_fit(&self) -> bool {
        self.fitted.is_some()
    }

    /// Journal provenance after each refit: one `lf.stats` event per LF
    /// — coverage/overlap/conflict plus the LF-vs-model disagreement
    /// counts the IDE's debugging panel is built on. The disagreement
    /// queries cost O(pairs) per LF, so nothing runs when no journal is
    /// recording.
    fn journal_lf_stats(&self) {
        if !panda_obs::journal_enabled() {
            return;
        }
        let owned: Vec<Vec<i8>> = self.matrix.columns().map(|(_, c)| c).collect();
        let all: Vec<&[i8]> = owned.iter().map(|c| c.as_slice()).collect();
        for row in self.lf_stats() {
            let Some(col) = self.matrix.column(&row.name) else {
                continue;
            };
            let count = |q| run_query(q, &col, &all, &self.posteriors).len();
            let mut ev = panda_obs::event("lf.stats")
                .field("lf", row.name.as_str())
                .field("n_match", row.n_match)
                .field("n_nonmatch", row.n_nonmatch)
                .field("n_abstain", row.n_abstain)
                .field("coverage", row.coverage)
                .field("overlap", row.overlap)
                .field("conflict", row.conflict)
                .field("model_disagree_fp", count(DebugQuery::LikelyFalsePositives))
                .field("model_disagree_fn", count(DebugQuery::LikelyFalseNegatives))
                .field("conflict_pairs", count(DebugQuery::Conflicts));
            if let Some(x) = row.est_fpr {
                ev = ev.field("est_fpr", x);
            }
            if let Some(x) = row.est_fnr {
                ev = ev.field("est_fnr", x);
            }
            ev.emit();
        }
    }

    fn matches_found(&self) -> usize {
        self.posteriors.iter().filter(|&&g| g >= 0.5).count()
    }

    /// The EM Stats Panel.
    pub fn em_stats(&self) -> EmStats {
        // Estimated precision from user spot labels on predicted matches.
        let mut labeled = 0usize;
        let mut correct = 0usize;
        for (&idx, &is_match) in &self.user_labels {
            if self.posteriors[idx] >= 0.5 {
                labeled += 1;
                if is_match {
                    correct += 1;
                }
            }
        }
        EmStats {
            left_rows: self.tables.left.len(),
            right_rows: self.tables.right.len(),
            candidate_pairs: self.candidates.len(),
            n_lfs: self.registry.len(),
            matches_found: self.matches_found(),
            estimated_precision: (labeled > 0).then(|| correct as f64 / labeled as f64),
            n_user_labels: self.user_labels.len(),
        }
    }

    /// The LF Stats Panel (model-estimated FPR/FNR; true rates included
    /// when the task carries gold).
    pub fn lf_stats(&self) -> Vec<LfStatsRow> {
        let gold = self.gold_vector();
        lf_stats(&self.matrix, Some(&self.posteriors), gold.as_deref())
    }

    /// Step 2: the "Show" button — smart-sample up to `k` likely matches
    /// the current model misses.
    pub fn smart_sample(&mut self, k: usize) -> Vec<DataViewerRow> {
        let picked = sampling::smart_sample(&self.likelihood, &self.posteriors, &self.shown, k);
        for &i in &picked {
            self.shown[i] = true;
        }
        self.log.push(SessionEvent::Sampled {
            count: picked.len(),
        });
        picked.into_iter().map(|i| self.viewer_row(i)).collect()
    }

    /// Uncertainty sampling: up to `k` unseen pairs the model is least
    /// sure about (γ nearest 0.5) — boundary cases worth a spot label.
    pub fn uncertainty_sample(&mut self, k: usize) -> Vec<DataViewerRow> {
        let picked = sampling::uncertainty_sample(&self.posteriors, &self.shown, k);
        for &i in &picked {
            self.shown[i] = true;
        }
        self.log.push(SessionEvent::Sampled {
            count: picked.len(),
        });
        picked.into_iter().map(|i| self.viewer_row(i)).collect()
    }

    /// Disagreement sampling: up to `k` unseen pairs where LFs conflict —
    /// the Step-4 debugging material.
    pub fn disagreement_sample(&mut self, k: usize) -> Vec<DataViewerRow> {
        let owned: Vec<Vec<i8>> = self.matrix.columns().map(|(_, c)| c).collect();
        let cols: Vec<&[i8]> = owned.iter().map(|c| c.as_slice()).collect();
        let picked = sampling::disagreement_sample(&cols, &self.shown, k);
        for &i in &picked {
            self.shown[i] = true;
        }
        self.log.push(SessionEvent::Sampled {
            count: picked.len(),
        });
        picked.into_iter().map(|i| self.viewer_row(i)).collect()
    }

    /// Baseline sampler for experiment E5 (random pairs, no smartness).
    pub fn random_sample(&mut self, k: usize) -> Vec<DataViewerRow> {
        self.sample_counter += 1;
        let picked = sampling::random_sample(
            self.candidates.len(),
            &self.shown,
            k,
            self.config.seed ^ self.sample_counter,
        );
        for &i in &picked {
            self.shown[i] = true;
        }
        self.log.push(SessionEvent::Sampled {
            count: picked.len(),
        });
        picked.into_iter().map(|i| self.viewer_row(i)).collect()
    }

    /// Step 4: click a stats cell — show the pairs behind it.
    pub fn debug_pairs(
        &self,
        lf_name: &str,
        query: DebugQuery,
        limit: usize,
    ) -> Vec<DataViewerRow> {
        let Some(col) = self.matrix.column(lf_name) else {
            return Vec::new();
        };
        let owned: Vec<Vec<i8>> = self.matrix.columns().map(|(_, c)| c).collect();
        let all: Vec<&[i8]> = owned.iter().map(|c| c.as_slice()).collect();
        run_query(query, &col, &all, &self.posteriors)
            .into_iter()
            .take(limit)
            .map(|i| self.viewer_row(i))
            .collect()
    }

    /// Step 5: a random sample of predicted matches for the user to
    /// spot-label (clicking "Estimated Precision").
    pub fn sample_predicted_matches(&mut self, k: usize) -> Vec<DataViewerRow> {
        self.sample_counter += 1;
        let predicted: Vec<usize> = (0..self.candidates.len())
            .filter(|&i| self.posteriors[i] >= 0.5 && !self.user_labels.contains_key(&i))
            .collect();
        let mask = vec![false; predicted.len()];
        let picked = sampling::random_sample(
            predicted.len(),
            &mask,
            k,
            self.config.seed ^ (0xabcd << 16) ^ self.sample_counter,
        );
        picked
            .into_iter()
            .map(|j| self.viewer_row(predicted[j]))
            .collect()
    }

    /// The user left/right-clicks the "M/U" cell of a viewer row.
    pub fn label_pair(&mut self, candidate_index: usize, is_match: bool) {
        assert!(candidate_index < self.candidates.len(), "index in range");
        self.user_labels.insert(candidate_index, is_match);
        self.log.push(SessionEvent::PairLabeled {
            candidate_index,
            is_match,
        });
    }

    /// Deployment phase: run the final LF set + model over (possibly
    /// larger) tables and return the predicted match set.
    pub fn deploy(&self, full_tables: &TablePair) -> DeploymentResult {
        let _span = panda_obs::span("session.deploy");
        let mut blocker = EmbeddingLshBlocker::new(self.config.seed);
        blocker.min_cosine = self.config.blocking_min_cosine;
        blocker.max_per_record = self.config.blocking_max_per_record;
        let candidates = blocker.candidates(full_tables);
        let mut matrix = LabelMatrix::new();
        matrix.apply(&self.registry, full_tables, &candidates);
        let mut model = self.config.model.build();
        let posteriors = model.fit_predict(&matrix, Some(&candidates));
        let mut predicted = MatchSet::new();
        for (i, pair) in candidates.iter() {
            if posteriors[i] >= 0.5 {
                predicted.insert(pair.left, pair.right);
            }
        }
        let metrics = full_tables.gold.as_ref().map(|gold| {
            let gv: Vec<bool> = candidates
                .pairs()
                .iter()
                .map(|p| gold.contains(p))
                .collect();
            metrics_at_half(&posteriors, &gv)
        });
        DeploymentResult {
            candidates,
            posteriors,
            predicted,
            metrics,
            table_sizes: (full_tables.left.len(), full_tables.right.len()),
        }
    }

    /// A serializable snapshot of the visible state.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            em: self.em_stats(),
            lfs: self.lf_stats(),
            n_events: self.log.len(),
        }
    }

    /// Quality of the current posteriors against gold (benchmarks only).
    pub fn current_metrics(&self) -> Option<Metrics> {
        self.gold_vector()
            .map(|gv| metrics_at_half(&self.posteriors, &gv))
    }

    /// Build one Data Viewer row.
    pub fn viewer_row(&self, candidate_index: usize) -> DataViewerRow {
        let pair = self
            .candidates
            .get(candidate_index)
            .expect("candidate index in range");
        let p = self.tables.pair_ref(pair).expect("pair resolvable");
        // Columns: left schema order, then right-only columns.
        let mut columns: Vec<String> = self
            .tables
            .left
            .schema()
            .names()
            .map(str::to_string)
            .collect();
        for name in self.tables.right.schema().names() {
            if !self.tables.left.schema().contains(name) {
                columns.push(name.to_string());
            }
        }
        let left_values = columns.iter().map(|c| p.left.text(c)).collect();
        let right_values = columns.iter().map(|c| p.right.text(c)).collect();
        DataViewerRow {
            candidate_index,
            pair,
            columns,
            left_values,
            right_values,
            model_gamma: Some(self.posteriors[candidate_index]),
            likelihood: Some(self.likelihood[candidate_index]),
            user_label: self.user_labels.get(&candidate_index).copied(),
            gold: self.tables.is_gold_match(pair),
        }
    }

    /// The gold vector aligned with the candidate set, when present.
    pub fn gold_vector(&self) -> Option<Vec<bool>> {
        self.tables.gold.as_ref().map(|gold| {
            self.candidates
                .pairs()
                .iter()
                .map(|p| gold.contains(p))
                .collect()
        })
    }

    // --- accessors used by experiments and front-ends ---

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The candidate set.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// Current posteriors.
    pub fn posteriors(&self) -> &[f64] {
        &self.posteriors
    }

    /// The LF registry.
    pub fn registry(&self) -> &LfRegistry {
        &self.registry
    }

    /// The underlying tables.
    pub fn tables(&self) -> &TablePair {
        &self.tables
    }

    /// The event log.
    pub fn events(&self) -> &[SessionEvent] {
        self.log.events()
    }

    /// The label matrix (read-only).
    pub fn matrix(&self) -> &LabelMatrix {
        &self.matrix
    }

    // --- durability (see [`crate::persist`]) ---

    /// Export the complete mutable state for persistence. `spec_for`
    /// maps an LF name to its rebuild recipe (the serve layer stores the
    /// wire `LfSpec` JSON); auto-generated LFs may return `None` — they
    /// are regenerated deterministically at rehydration. Errors when an
    /// LF is neither auto-generated nor spec-buildable (e.g. a closure
    /// LF registered programmatically), or when the fitted model cannot
    /// capture its parameters.
    pub fn dehydrate(
        &self,
        spec_for: &dyn Fn(&str) -> Option<String>,
    ) -> Result<SessionState, String> {
        let mut lfs = Vec::with_capacity(self.registry.len());
        for lf in self.registry.lfs() {
            let spec = spec_for(lf.name());
            if spec.is_none() && lf.provenance() != LfProvenance::Auto {
                return Err(format!(
                    "LF {:?} has no rebuild spec and is not auto-generated; it cannot be persisted",
                    lf.name()
                ));
            }
            lfs.push(persist::LfState {
                name: lf.name().to_string(),
                version: self.registry.version(lf.name()).unwrap_or(0),
                spec,
            });
        }
        let fitted_model = match &self.fitted {
            None => None,
            Some(model) => Some(persist::f64_bits(&model.capture_fitted().ok_or_else(
                || format!("model {:?} cannot capture its fitted state", model.name()),
            )?)),
        };
        let mut user_labels: Vec<persist::UserLabel> = self
            .user_labels
            .iter()
            .map(|(&i, &is_match)| persist::UserLabel {
                candidate: i as u64,
                is_match,
            })
            .collect();
        user_labels.sort_by_key(|l| l.candidate);
        Ok(SessionState {
            lfs,
            next_lf_version: self.registry.next_version(),
            matrix_digest: self.matrix.digest(),
            columns: self
                .matrix
                .snapshot_columns()
                .into_iter()
                .map(|c| persist::ColumnState {
                    name: c.name,
                    version: c.version,
                    labels: persist::encode_labels(&c.labels),
                })
                .collect(),
            posteriors: persist::f64_bits(&self.posteriors),
            fitted_model,
            user_labels,
            shown: self
                .shown
                .iter()
                .enumerate()
                .filter(|(_, &s)| s)
                .map(|(i, _)| i as u64)
                .collect(),
            sample_counter: self.sample_counter,
            events: self.log.events().to_vec(),
        })
    }

    /// Rebuild a session from persisted state, **bit-exactly**: same
    /// matrix digest, same posterior bits, same ad-hoc scores, and the
    /// same deterministic sampling stream as the session that was
    /// dehydrated. No refit runs and no new events are logged.
    ///
    /// Blocking re-runs from `tables` + `config` (deterministic under
    /// the seed); spec-less LFs regenerate through auto-LF discovery;
    /// `build_spec(name, spec)` rebuilds the rest. The persisted matrix
    /// digest is then verified against the rebuilt matrix — since the
    /// candidate fingerprint is recomputed from the re-derived candidate
    /// set, a digest match also proves tables/config/blocking came out
    /// identical to the original session.
    pub fn rehydrate(
        tables: TablePair,
        config: SessionConfig,
        state: &SessionState,
        build_spec: &dyn Fn(&str, &str) -> Result<BoxedLf, String>,
    ) -> Result<PandaSession, String> {
        let _span = panda_obs::span("session.rehydrate");
        let (candidates, likelihood) = Self::block_candidates(&tables, &config);

        // Regenerate auto LFs only when some entry needs one.
        let mut auto: HashMap<String, BoxedLf> = HashMap::new();
        if state.lfs.iter().any(|l| l.spec.is_none()) {
            for g in generate_auto_lfs(&tables, &candidates, &config.auto_lf_config) {
                let lf: BoxedLf = Arc::new(g.lf);
                auto.insert(lf.name().to_string(), lf);
            }
        }
        let mut registry = LfRegistry::new();
        for entry in &state.lfs {
            let lf = match &entry.spec {
                Some(spec) => {
                    let lf = build_spec(&entry.name, spec)?;
                    if lf.name() != entry.name {
                        return Err(format!(
                            "spec for LF {:?} rebuilt an LF named {:?}",
                            entry.name,
                            lf.name()
                        ));
                    }
                    lf
                }
                None => auto.get(&entry.name).cloned().ok_or_else(|| {
                    format!(
                        "auto LF {:?} was not regenerated — tables or auto-LF config differ \
                         from the persisted session",
                        entry.name
                    )
                })?,
            };
            registry.restore_entry(lf, entry.version);
        }
        registry.set_next_version(state.next_lf_version);

        let columns = state
            .columns
            .iter()
            .map(|c| {
                Ok(panda_lf::ColumnSnapshot {
                    name: c.name.clone(),
                    version: c.version,
                    labels: persist::decode_labels(&c.labels)?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let matrix = LabelMatrix::restore(&candidates, columns)?;
        let rebuilt = matrix.digest();
        if rebuilt != state.matrix_digest {
            return Err(format!(
                "matrix digest mismatch after rehydration: persisted {:#018x}, rebuilt \
                 {rebuilt:#018x} — the stored state does not belong to these tables/config",
                state.matrix_digest
            ));
        }

        let posteriors = persist::bits_f64(&state.posteriors);
        if posteriors.len() != candidates.len() {
            return Err(format!(
                "persisted posteriors cover {} pairs but blocking produced {}",
                posteriors.len(),
                candidates.len()
            ));
        }
        let fitted = match &state.fitted_model {
            None => None,
            Some(bits) => {
                let mut model = config.model.build();
                if !model.restore_fitted(&persist::bits_f64(bits)) {
                    return Err(format!(
                        "model {:?} rejected the persisted parameter blob (model choice changed?)",
                        model.name()
                    ));
                }
                Some(model)
            }
        };

        let mut shown = vec![false; candidates.len()];
        for &i in &state.shown {
            let i = i as usize;
            if i >= shown.len() {
                return Err(format!("persisted shown index {i} out of range"));
            }
            shown[i] = true;
        }
        let mut user_labels = HashMap::new();
        for l in &state.user_labels {
            let i = l.candidate as usize;
            if i >= candidates.len() {
                return Err(format!("persisted user label index {i} out of range"));
            }
            user_labels.insert(i, l.is_match);
        }
        let mut log = EventLog::default();
        for e in &state.events {
            log.push(e.clone());
        }

        Ok(PandaSession {
            config,
            tables,
            candidates,
            likelihood,
            registry,
            matrix,
            posteriors,
            shown,
            user_labels,
            log,
            sample_counter: state.sample_counter,
            fitted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panda_datasets::{generate, DatasetFamily, GeneratorConfig};
    use panda_lf::SimilarityLf;
    use panda_text::SimilarityConfig;

    fn small_task() -> TablePair {
        generate(
            DatasetFamily::FodorsZagats,
            &GeneratorConfig::new(5).with_entities(80),
        )
    }

    fn no_auto() -> SessionConfig {
        SessionConfig {
            auto_lfs: false,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn load_without_auto_lfs_has_empty_registry() {
        let s = PandaSession::load(small_task(), no_auto());
        assert_eq!(s.registry().len(), 0);
        assert!(matches!(s.events()[0], SessionEvent::Loaded { .. }));
        let em = s.em_stats();
        assert!(em.candidate_pairs > 0);
        assert_eq!(em.n_lfs, 0);
        assert_eq!(em.estimated_precision, None);
    }

    #[test]
    fn load_with_auto_lfs_discovers_and_fits() {
        let s = PandaSession::load(small_task(), SessionConfig::default());
        assert!(!s.registry().is_empty(), "auto LFs discovered");
        let em = s.em_stats();
        assert!(em.matches_found > 0, "model finds matches from auto LFs");
        let m = s.current_metrics().unwrap();
        assert!(m.f1 > 0.4, "auto LFs give a sane starting point: {m:?}");
    }

    #[test]
    fn manual_lf_and_incremental_apply() {
        let mut s = PandaSession::load(small_task(), no_auto());
        s.upsert_lf(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )));
        let r1 = s.apply();
        assert_eq!(r1.applied, vec!["name_overlap"]);
        s.upsert_lf(Arc::new(SimilarityLf::new(
            "addr_overlap",
            "addr",
            SimilarityConfig::default_jaccard(),
            0.7,
            0.05,
        )));
        let r2 = s.apply();
        assert_eq!(r2.applied, vec!["addr_overlap"]);
        assert_eq!(r2.reused, vec!["name_overlap"]);
        assert_eq!(s.lf_stats().len(), 2);
    }

    #[test]
    fn smart_sampling_marks_shown_and_excludes_found() {
        let mut s = PandaSession::load(small_task(), SessionConfig::default());
        let batch1 = s.smart_sample(10);
        assert!(!batch1.is_empty());
        for row in &batch1 {
            assert!(
                row.model_gamma.unwrap() < 0.5,
                "sampler excludes found matches"
            );
            assert!(row.likelihood.is_some());
        }
        let idx1: Vec<usize> = batch1.iter().map(|r| r.candidate_index).collect();
        let batch2 = s.smart_sample(10);
        for row in &batch2 {
            assert!(
                !idx1.contains(&row.candidate_index),
                "no repeats across clicks"
            );
        }
    }

    #[test]
    fn debug_pairs_matches_panel_semantics() {
        // Start from the auto-LF set (it anchors the labeling model),
        // then add an intentionally sloppy LF voting +1 on everything. A
        // constant LF as one of only two columns would poison the
        // majority-vote EM init — with real LFs present the model simply
        // learns it is uninformative.
        let mut s = PandaSession::load(small_task(), SessionConfig::default());
        s.upsert_lf(Arc::new(panda_lf::ClosureLf::new("always_match", |_| {
            panda_lf::Label::Match
        })));
        s.upsert_lf(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )));
        s.apply();
        // Sanity: the model does NOT follow the sloppy LF everywhere.
        assert!(s.em_stats().matches_found < s.candidates().len());
        let fps = s.debug_pairs("always_match", DebugQuery::LikelyFalsePositives, 20);
        // always_match votes +1 on non-matching pairs too; the model
        // (driven by name_overlap) disagrees there.
        assert!(!fps.is_empty(), "sloppy LF has likely false positives");
        let col = s.matrix().column("always_match").unwrap();
        for row in &fps {
            assert_eq!(col[row.candidate_index], 1);
            assert!(row.model_gamma.unwrap() < 0.5);
        }
    }

    #[test]
    fn uncertainty_and_disagreement_samplers() {
        let mut s = PandaSession::load(small_task(), SessionConfig::default());
        s.upsert_lf(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )));
        s.apply();
        let unc = s.uncertainty_sample(5);
        for w in unc.windows(2) {
            let a = (w[0].model_gamma.unwrap() - 0.5).abs();
            let b = (w[1].model_gamma.unwrap() - 0.5).abs();
            assert!(a <= b + 1e-12, "sorted by uncertainty");
        }
        let dis = s.disagreement_sample(5);
        let cols: Vec<Vec<i8>> = s.matrix().columns().map(|(_, c)| c).collect();
        for row in &dis {
            let i = row.candidate_index;
            assert!(cols.iter().any(|c| c[i] > 0) && cols.iter().any(|c| c[i] < 0));
        }
    }

    #[test]
    fn precision_estimation_from_spot_labels() {
        let mut s = PandaSession::load(small_task(), SessionConfig::default());
        let sample = s.sample_predicted_matches(10);
        assert!(!sample.is_empty());
        // The user labels each sampled pair with its gold truth.
        for row in &sample {
            s.label_pair(row.candidate_index, row.gold.unwrap());
        }
        let em = s.em_stats();
        assert_eq!(em.n_user_labels, sample.len());
        let est = em.estimated_precision.unwrap();
        assert!((0.0..=1.0).contains(&est));
        // With gold-truth labels the estimate equals the sample precision.
        let true_frac =
            sample.iter().filter(|r| r.gold.unwrap()).count() as f64 / sample.len() as f64;
        assert!((est - true_frac).abs() < 1e-12);
    }

    #[test]
    fn deployment_runs_final_lfs_on_bigger_tables() {
        let s = PandaSession::load(small_task(), SessionConfig::default());
        let bigger = generate(
            DatasetFamily::FodorsZagats,
            &GeneratorConfig::new(6).with_entities(150),
        );
        let result = s.deploy(&bigger);
        assert!(!result.candidates.is_empty());
        assert_eq!(result.posteriors.len(), result.candidates.len());
        let m = result.metrics.unwrap();
        assert!(m.f1 > 0.3, "deployed LFs transfer: {m:?}");
        assert_eq!(
            result.predicted.len(),
            result.posteriors.iter().filter(|&&g| g >= 0.5).count()
        );
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = PandaSession::load(small_task(), SessionConfig::default());
        let snap = s.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: crate::panels::SessionSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.em, snap.em);
        assert_eq!(back.lfs.len(), snap.lfs.len());
    }

    #[test]
    fn incremental_lf_loop_matches_batch_apply() {
        let mk = |name: &str, upper: f64| {
            Arc::new(SimilarityLf::new(
                name,
                "name",
                SimilarityConfig::default_jaccard(),
                upper,
                0.1,
            ))
        };
        // Batch path: upsert + full apply.
        let mut batch = PandaSession::load(small_task(), no_auto());
        batch.upsert_lf(mk("name_tight", 0.7));
        batch.upsert_lf(mk("name_loose", 0.4));
        batch.apply();
        // Incremental path: per-column add + explicit fit.
        let mut inc = PandaSession::load(small_task(), no_auto());
        inc.upsert_lf_incremental(mk("name_tight", 0.7)).unwrap();
        inc.upsert_lf_incremental(mk("name_loose", 0.4)).unwrap();
        inc.fit();
        assert_eq!(
            inc.matrix().digest(),
            batch.matrix().digest(),
            "incremental adds build the same matrix bytes"
        );
        assert_eq!(inc.posteriors(), batch.posteriors());
    }

    #[test]
    fn incremental_remove_restores_matrix() {
        let mut s = PandaSession::load(small_task(), no_auto());
        s.upsert_lf_incremental(Arc::new(SimilarityLf::new(
            "keep",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )))
        .unwrap();
        let before = s.matrix().digest();
        s.upsert_lf_incremental(Arc::new(panda_lf::ClosureLf::new("extra", |_| {
            panda_lf::Label::Match
        })))
        .unwrap();
        assert_ne!(s.matrix().digest(), before);
        assert!(s.remove_lf_incremental("extra"));
        assert_eq!(s.matrix().digest(), before, "add+remove is a no-op");
        assert!(!s.remove_lf_incremental("extra"));
    }

    #[test]
    fn incremental_upsert_of_panicking_lf_rolls_back() {
        let mut s = PandaSession::load(small_task(), no_auto());
        s.upsert_lf_incremental(Arc::new(panda_lf::ClosureLf::new("ok", |_| {
            panda_lf::Label::Abstain
        })))
        .unwrap();
        let digest = s.matrix().digest();
        let err = s
            .upsert_lf_incremental(Arc::new(panda_lf::ClosureLf::new("bad", |_| {
                panic!("user bug")
            })))
            .unwrap_err();
        assert!(err.contains("user bug"));
        assert!(
            s.registry().get("bad").is_none(),
            "failed LF not registered"
        );
        assert_eq!(s.matrix().digest(), digest, "matrix unchanged");

        // Replacing an existing LF with a panicking one restores it.
        let err2 = s
            .upsert_lf_incremental(Arc::new(panda_lf::ClosureLf::new("ok", |_| {
                panic!("edited into a bug")
            })))
            .unwrap_err();
        assert!(err2.contains("edited into a bug"));
        assert!(s.registry().get("ok").is_some(), "previous LF restored");
        assert_eq!(s.matrix().column("ok").unwrap().len(), s.candidates().len());
    }

    #[test]
    fn score_pair_matches_candidate_posteriors() {
        let mut s = PandaSession::load(small_task(), no_auto());
        s.upsert_lf_incremental(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )))
        .unwrap();
        s.fit();
        assert!(s.has_fit());
        // Scoring a pair that IS a candidate reproduces its posterior.
        for i in [0usize, 1, 2] {
            let pair = s.candidates().get(i).unwrap();
            let scored = s.score_pair(pair).unwrap();
            assert_eq!(scored, s.posteriors()[i], "candidate {i}");
        }
        // Out-of-range rows give a clean error, not a panic.
        let bad = panda_table::CandidatePair::new(u32::MAX, 0);
        assert!(s.score_pair(bad).is_err());
    }

    #[test]
    fn score_pair_without_lfs_is_a_clean_error() {
        // Load always fits (even over an empty matrix), but a model with
        // no per-LF parameters cannot score ad-hoc rows.
        let s = PandaSession::load(small_task(), no_auto());
        assert!(s.has_fit());
        let err = s
            .score_pair(panda_table::CandidatePair::new(0, 0))
            .unwrap_err();
        assert!(err.contains("cannot score"), "{err}");
    }

    /// A toy spec codec for the round-trip tests: `attr:upper:lower` →
    /// Jaccard `SimilarityLf` (the serve layer uses its wire `LfSpec`
    /// JSON in this role).
    fn build_sim_spec(name: &str, spec: &str) -> Result<BoxedLf, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let [attr, upper, lower] = parts.as_slice() else {
            return Err(format!("bad spec {spec:?}"));
        };
        Ok(Arc::new(SimilarityLf::new(
            name,
            *attr,
            SimilarityConfig::default_jaccard(),
            upper.parse().map_err(|e| format!("{e}"))?,
            lower.parse().map_err(|e| format!("{e}"))?,
        )))
    }

    #[test]
    fn dehydrate_rehydrate_is_bit_exact() {
        // Auto LFs (spec-less, regenerated at rehydration) plus a manual
        // spec-backed LF, a fit, and a spot label.
        let mut live = PandaSession::load(small_task(), SessionConfig::default());
        live.upsert_lf_incremental(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )))
        .unwrap();
        live.fit();
        live.label_pair(0, true);

        let spec_for = |name: &str| (name == "name_overlap").then(|| "name:0.6:0.1".to_string());
        let state = live.dehydrate(&spec_for).unwrap();
        let mut back = PandaSession::rehydrate(
            small_task(),
            SessionConfig::default(),
            &state,
            &build_sim_spec,
        )
        .unwrap();

        assert_eq!(back.matrix().digest(), live.matrix().digest());
        assert_eq!(
            persist::f64_bits(back.posteriors()),
            persist::f64_bits(live.posteriors()),
            "posterior bits survive"
        );
        assert_eq!(back.events().len(), live.events().len());
        assert_eq!(back.em_stats(), live.em_stats());
        // Ad-hoc scoring works with NO refit, bit-exactly.
        let pair = live.candidates().get(0).unwrap();
        assert_eq!(
            back.score_pair(pair).unwrap().to_bits(),
            live.score_pair(pair).unwrap().to_bits()
        );
        // A further warm-started refit continues identically on both.
        live.fit();
        back.fit();
        assert_eq!(
            persist::f64_bits(back.posteriors()),
            persist::f64_bits(live.posteriors()),
            "post-recovery refit stays on the live trajectory"
        );
    }

    #[test]
    fn rehydrate_rejects_tampered_or_foreign_state() {
        let mut live = PandaSession::load(small_task(), no_auto());
        live.upsert_lf_incremental(Arc::new(SimilarityLf::new(
            "name_overlap",
            "name",
            SimilarityConfig::default_jaccard(),
            0.6,
            0.1,
        )))
        .unwrap();
        live.fit();
        let spec_for = |_: &str| Some("name:0.6:0.1".to_string());
        let state = live.dehydrate(&spec_for).unwrap();

        // Tampered column bytes → digest mismatch.
        let mut bad = state.clone();
        let flipped: String = bad.columns[0]
            .labels
            .chars()
            .map(|c| if c == '+' { '-' } else { c })
            .collect();
        bad.columns[0].labels = flipped;
        let err = match PandaSession::rehydrate(small_task(), no_auto(), &bad, &build_sim_spec) {
            Err(e) => e,
            Ok(_) => panic!("tampered state must not rehydrate"),
        };
        assert!(err.contains("digest mismatch"), "{err}");

        // Different tables → different candidates → digest mismatch too.
        let other = generate(
            DatasetFamily::FodorsZagats,
            &GeneratorConfig::new(9).with_entities(80),
        );
        assert!(PandaSession::rehydrate(other, no_auto(), &state, &build_sim_spec).is_err());

        // A closure LF with no spec cannot be persisted.
        let mut closured = PandaSession::load(small_task(), no_auto());
        closured.upsert_lf(Arc::new(panda_lf::ClosureLf::new("cl", |_| {
            panda_lf::Label::Abstain
        })));
        closured.apply();
        assert!(closured.dehydrate(&|_| None).is_err());
    }

    #[test]
    fn failing_lf_is_quarantined_not_fatal() {
        let mut s = PandaSession::load(small_task(), no_auto());
        s.upsert_lf(Arc::new(panda_lf::ClosureLf::new("buggy", |_| {
            panic!("user bug")
        })));
        let report = s.apply();
        assert_eq!(report.failed.len(), 1);
        // The session is still usable.
        let _ = s.em_stats();
        let _ = s.smart_sample(3);
    }
}
