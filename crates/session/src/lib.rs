//! The Panda IDE session engine.
//!
//! The original demo is a browser IDE (Vue + JupyterLab + Flask). Every
//! user interaction in the paper's §2.2/§3 maps onto one method of
//! [`PandaSession`]; the GUI panels map onto serializable panel structs.
//! A terminal front-end (`examples/interactive_session.rs`) renders them,
//! but any front-end could — the session is the system, the GUI is
//! presentation (see DESIGN.md §2).
//!
//! | Paper interaction | API |
//! |---|---|
//! | "Load data" button (Step 1) | [`PandaSession::load`] — blocking, auto-LF discovery, initial model fit |
//! | EM Stats Panel | [`PandaSession::em_stats`] |
//! | LF Stats Panel (sortable, click FPR…) | [`PandaSession::lf_stats`] + [`PandaSession::debug_pairs`] |
//! | "Show" button / smart sampling (Step 2) | [`PandaSession::smart_sample`] |
//! | Writing/editing LFs in the notebook (Step 3) | [`PandaSession::upsert_lf`] / [`PandaSession::remove_lf`] |
//! | `labeler.apply()` (incremental) | [`PandaSession::apply`] |
//! | Clicking a stats cell to see offending pairs (Step 4) | [`PandaSession::debug_pairs`] with a [`DebugQuery`] |
//! | Left/right-click labeling + estimated precision (Step 5) | [`PandaSession::sample_predicted_matches`], [`PandaSession::label_pair`], [`EmStats::estimated_precision`] |
//! | Deployment phase | [`PandaSession::deploy`] |

pub mod authoring;
pub mod debug;
pub mod events;
pub mod panels;
pub mod persist;
pub mod sampling;
pub mod scale;
pub mod session;

pub use authoring::generate_notebook;
pub use debug::DebugQuery;
pub use events::SessionEvent;
pub use panels::{DataViewerRow, EmStats, SessionSnapshot};
pub use persist::SessionState;
pub use scale::downsample_task;
pub use session::{DeploymentResult, ModelChoice, PandaSession, SessionConfig};
