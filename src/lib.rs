//! # Panda: weakly supervised entity matching
//!
//! A from-scratch Rust reproduction of *"Demonstration of Panda: A Weakly
//! Supervised Entity Matching System"* (PVLDB 14(12), 2021). Instead of
//! hand-labeling tuple pairs, you write (or auto-generate) **labeling
//! functions** that vote match / non-match / abstain, and an EM-specific
//! **labeling model** combines the noisy votes into probabilistic labels.
//!
//! This crate is a facade: it re-exports the workspace crates and offers a
//! [`prelude`] for the common path. See the `examples/` directory for
//! runnable walkthroughs (start with `quickstart.rs`) and DESIGN.md for
//! the architecture.
//!
//! ```
//! use panda::prelude::*;
//! use std::sync::Arc;
//!
//! // A benchmark task with known ground truth.
//! let task = panda::datasets::generate(
//!     panda::datasets::DatasetFamily::AbtBuy,
//!     &panda::datasets::GeneratorConfig::new(1).with_entities(60),
//! );
//!
//! // Load a session: blocking + auto-LF discovery + model fit.
//! let mut session = PandaSession::load(task, SessionConfig::default());
//!
//! // Write the paper's name_overlap LF and re-apply incrementally.
//! session.upsert_lf(Arc::new(SimilarityLf::new(
//!     "name_overlap", "name", SimilarityConfig::default_jaccard(), 0.6, 0.1,
//! )));
//! session.apply();
//!
//! let stats = session.em_stats();
//! assert!(stats.matches_found > 0);
//! ```

pub use panda_autolf as autolf;
pub use panda_datasets as datasets;
pub use panda_embed as embed;
pub use panda_eval as eval;
pub use panda_exec as exec;
pub use panda_lf as lf;
pub use panda_model as model;
pub use panda_obs as obs;
pub use panda_regex as regex;
pub use panda_session as session;
pub use panda_table as table;
pub use panda_text as text;

/// The common path: everything a typical Panda program touches.
pub mod prelude {
    pub use panda_autolf::{generate_auto_lfs, AutoLfConfig};
    pub use panda_embed::{Blocker, EmbeddingLshBlocker};
    pub use panda_eval::metrics::metrics_at_half;
    pub use panda_lf::{
        AttributeEqualityLf, ClosureLf, ExtractionLf, Label, LabelMatrix, LabelingFunction,
        LfRegistry, NumericToleranceLf, SimilarityLf,
    };
    pub use panda_model::{LabelModel, MajorityVote, PandaModel, SnorkelModel, TransitivityMode};
    pub use panda_session::{
        DataViewerRow, DebugQuery, EmStats, ModelChoice, PandaSession, SessionConfig,
    };
    pub use panda_table::{CandidatePair, CandidateSet, MatchSet, Table, TablePair, Value};
    pub use panda_text::{Measure, Preprocess, SimilarityConfig, Tokenizer, Weighting};
}
